// Timed fault injection and the self-healing stack on top of it:
//  * FaultSchedule timeline semantics (transitions, flaps, node death,
//    the surviving-topology oracle);
//  * Network integration — downed wires manifest as the paper's own
//    NO SUCH WIRE, dead sources as kDropped, sampled at head-arrival time;
//  * RobustMapper — convergence on quiet networks, severed subclusters
//    (Theorem 1 against the surviving core), flapping-link quarantine,
//    mid-mapping faults under cross-traffic;
//  * route health — broken routes detected and repaired to convergence.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.hpp"
#include "mapper/berkeley_mapper.hpp"
#include "mapper/robust_mapper.hpp"
#include "probe/probe_engine.hpp"
#include "routing/route_health.hpp"
#include "simnet/fault_schedule.hpp"
#include "simnet/network.hpp"
#include "topology/algorithms.hpp"
#include "topology/generators.hpp"
#include "topology/isomorphism.hpp"

namespace sanmap {
namespace {

using common::SimTime;
using topo::NodeId;
using topo::Topology;
using topo::WireId;

/// The oracle a mapper can be held to under faults: the mapper's connected
/// component of the surviving topology, stripped of its separated set
/// (Theorem 1's N - F, with N the fabric the schedule left alive).
Topology surviving_core(const Topology& full,
                        const simnet::FaultSchedule& schedule, SimTime at,
                        NodeId mapper_host) {
  Topology alive = schedule.surviving(full, at);
  std::vector<int> component;
  topo::components(alive, component);
  for (const NodeId n : alive.nodes()) {
    if (component[n] != component[mapper_host]) {
      alive.remove_node(n);
    }
  }
  return topo::core(alive);
}

// ------------------------------------------------------- schedule basics --

TEST(FaultSchedule, LinkTransitionsAreInclusiveAndOrdered) {
  Topology t;
  const NodeId h = t.add_host("h");
  const NodeId s = t.add_switch();
  const WireId w = t.connect(h, 0, s, 0);

  simnet::FaultSchedule schedule;
  EXPECT_TRUE(schedule.empty());
  schedule.link_down(w, SimTime::ms(1));
  schedule.link_up(w, SimTime::ms(3));
  EXPECT_FALSE(schedule.empty());
  EXPECT_EQ(schedule.events(), 2u);

  EXPECT_TRUE(schedule.wire_up_at(t, w, SimTime{}));
  EXPECT_TRUE(schedule.wire_up_at(t, w, SimTime::us(999)));
  EXPECT_FALSE(schedule.wire_up_at(t, w, SimTime::ms(1)));  // inclusive
  EXPECT_FALSE(schedule.wire_up_at(t, w, SimTime::ms(2)));
  EXPECT_TRUE(schedule.wire_up_at(t, w, SimTime::ms(3)));
  EXPECT_TRUE(schedule.wire_up_at(t, w, SimTime::ms(100)));
}

TEST(FaultSchedule, FlapFollowsDutyCycleFromItsStart) {
  Topology t;
  const NodeId h = t.add_host("h");
  const NodeId s = t.add_switch();
  const WireId w = t.connect(h, 0, s, 0);

  simnet::FaultSchedule schedule;
  schedule.flapping_link(w, SimTime::ms(1), 0.6, SimTime::ms(10));

  // Before the flap starts the wire is untouched.
  EXPECT_TRUE(schedule.wire_up_at(t, w, SimTime::ms(5)));
  // Then: up for 600 us, down for 400 us, repeating.
  EXPECT_TRUE(schedule.wire_up_at(t, w, SimTime::ms(10)));
  EXPECT_TRUE(schedule.wire_up_at(t, w, SimTime::ms(10) + SimTime::us(599)));
  EXPECT_FALSE(schedule.wire_up_at(t, w, SimTime::ms(10) + SimTime::us(600)));
  EXPECT_FALSE(schedule.wire_up_at(t, w, SimTime::ms(10) + SimTime::us(999)));
  EXPECT_TRUE(schedule.wire_up_at(t, w, SimTime::ms(11)));
  EXPECT_FALSE(schedule.wire_up_at(t, w, SimTime::ms(11) + SimTime::us(700)));
}

TEST(FaultSchedule, DutyCycleEdgesPinTheWireDownOrUp) {
  Topology t;
  const NodeId h = t.add_host("h");
  const NodeId s = t.add_switch();
  const WireId w = t.connect(h, 0, s, 0);

  // duty 0.0: the up span is empty — the wire is down from the flap's
  // start onward, at every phase of the period.
  simnet::FaultSchedule always_down;
  always_down.flapping_link(w, SimTime::ms(1), 0.0, SimTime::ms(10));
  EXPECT_TRUE(always_down.wire_up_at(t, w, SimTime::ms(9)));
  for (int us = 0; us <= 3000; us += 37) {
    EXPECT_FALSE(
        always_down.wire_up_at(t, w, SimTime::ms(10) + SimTime::us(us)))
        << us;
  }

  // duty 1.0: the down span is empty — the flap never takes the wire out.
  simnet::FaultSchedule always_up;
  always_up.flapping_link(w, SimTime::ms(1), 1.0, SimTime::ms(10));
  for (int us = 0; us <= 3000; us += 37) {
    EXPECT_TRUE(always_up.wire_up_at(t, w, SimTime::ms(10) + SimTime::us(us)))
        << us;
  }
}

TEST(FaultSchedule, NodeRevivalRestoresIncidentWireLiveness) {
  Topology t;
  const NodeId h0 = t.add_host("h0");
  const NodeId h1 = t.add_host("h1");
  const NodeId s0 = t.add_switch();
  const NodeId s1 = t.add_switch();
  t.connect(h0, 0, s0, 0);
  const WireId wss = t.connect(s0, 1, s1, 0);
  const WireId wh1 = t.connect(s1, 1, h1, 0);

  simnet::FaultSchedule schedule;
  schedule.node_down(s1, SimTime::ms(2));
  schedule.node_up(s1, SimTime::ms(5));

  // While dead, the node's wires are down and surviving() drops the node.
  EXPECT_FALSE(schedule.wire_up_at(t, wss, SimTime::ms(3)));
  EXPECT_FALSE(schedule.wire_up_at(t, wh1, SimTime::ms(3)));
  EXPECT_FALSE(schedule.surviving(t, SimTime::ms(3)).node_alive(s1));

  // Revival restores every incident wire — liveness comes back from the
  // node state alone, with no per-wire link_up events — and surviving()
  // is structurally the original fabric again.
  EXPECT_TRUE(schedule.wire_up_at(t, wss, SimTime::ms(5)));
  EXPECT_TRUE(schedule.wire_up_at(t, wh1, SimTime::ms(5)));
  EXPECT_TRUE(schedule.surviving(t, SimTime::ms(5)).structurally_equal(t));

  // Unless a wire had its own down transition while the node was dead:
  // that wire needs its own link_up.
  schedule.link_down(wh1, SimTime::ms(3));
  EXPECT_TRUE(schedule.wire_up_at(t, wss, SimTime::ms(6)));
  EXPECT_FALSE(schedule.wire_up_at(t, wh1, SimTime::ms(6)));
  schedule.link_up(wh1, SimTime::ms(7));
  EXPECT_TRUE(schedule.wire_up_at(t, wh1, SimTime::ms(7)));
}

TEST(FaultSchedule, NodeDeathTakesIncidentWiresDown) {
  Topology t;
  const NodeId h0 = t.add_host("h0");
  const NodeId h1 = t.add_host("h1");
  const NodeId s0 = t.add_switch();
  const NodeId s1 = t.add_switch();
  const WireId wh0 = t.connect(h0, 0, s0, 0);
  const WireId wss = t.connect(s0, 1, s1, 0);
  const WireId wh1 = t.connect(s1, 1, h1, 0);

  simnet::FaultSchedule schedule;
  schedule.node_down(s1, SimTime::ms(2));
  schedule.node_up(s1, SimTime::ms(5));

  EXPECT_TRUE(schedule.node_up_at(s1, SimTime::ms(1)));
  EXPECT_FALSE(schedule.node_up_at(s1, SimTime::ms(2)));
  EXPECT_TRUE(schedule.node_up_at(s1, SimTime::ms(5)));

  // Both wires incident to the dead switch are down with it; the far wire
  // is untouched.
  EXPECT_TRUE(schedule.wire_up_at(t, wh0, SimTime::ms(3)));
  EXPECT_FALSE(schedule.wire_up_at(t, wss, SimTime::ms(3)));
  EXPECT_FALSE(schedule.wire_up_at(t, wh1, SimTime::ms(3)));
  EXPECT_TRUE(schedule.wire_up_at(t, wss, SimTime::ms(6)));
}

TEST(FaultSchedule, SurvivingTopologyIsTheMinusFOracle) {
  common::Rng rng(4242);
  Topology t = topo::star(4, 2);
  const auto switches = t.switches();
  const NodeId dead_switch = switches.back();

  simnet::FaultSchedule schedule;
  schedule.node_down(dead_switch, SimTime::ms(1));

  const Topology before = schedule.surviving(t, SimTime{});
  EXPECT_TRUE(before.structurally_equal(t));

  const Topology after = schedule.surviving(t, SimTime::ms(2));
  EXPECT_FALSE(after.node_alive(dead_switch));
  EXPECT_EQ(after.num_switches(), t.num_switches() - 1);
  // Ids are preserved: every surviving node keeps its id and name.
  for (const NodeId n : after.nodes()) {
    EXPECT_TRUE(t.node_alive(n));
    EXPECT_EQ(after.name(n), t.name(n));
  }
}

// --------------------------------------------------- network integration --

TEST(FaultNetwork, DownedWireManifestsAsNoSuchWire) {
  Topology t;
  const NodeId h0 = t.add_host("h0");
  const NodeId h1 = t.add_host("h1");
  const NodeId s0 = t.add_switch();
  const NodeId s1 = t.add_switch();
  t.connect(h0, 0, s0, 0);
  const WireId wss = t.connect(s0, 1, s1, 0);
  t.connect(s1, 1, h1, 0);

  simnet::FaultSchedule schedule;
  schedule.link_down(wss, SimTime::ms(1));

  simnet::Network net(t);
  net.attach_faults(&schedule);
  const simnet::Route route{+1, +1};

  const auto before = net.send(h0, route, nullptr, SimTime{});
  EXPECT_TRUE(before.delivered());
  EXPECT_EQ(before.destination, h1);

  const auto after = net.send(h0, route, nullptr, SimTime::ms(2));
  EXPECT_EQ(after.status, simnet::DeliveryStatus::kNoSuchWire);
  EXPECT_EQ(after.destination, s0);  // the head died selecting s0's port

  // A short route that now ends on a switch is STRANDED IN NETWORK —
  // the paper's failure modes, no new status.
  const auto stranded = net.send(h0, simnet::Route{}, nullptr, SimTime::ms(2));
  EXPECT_EQ(stranded.status, simnet::DeliveryStatus::kStrandedInNetwork);
}

TEST(FaultNetwork, DeadSourceHostCannotInject) {
  Topology t;
  const NodeId h0 = t.add_host("h0");
  const NodeId h1 = t.add_host("h1");
  const NodeId s0 = t.add_switch();
  t.connect(h0, 0, s0, 0);
  t.connect(s0, 1, h1, 0);

  simnet::FaultSchedule schedule;
  schedule.node_down(h0, SimTime::ms(1));

  simnet::Network net(t);
  net.attach_faults(&schedule);

  EXPECT_TRUE(net.send(h0, simnet::Route{+1}, nullptr, SimTime{}).delivered());
  const auto dead = net.send(h0, simnet::Route{+1}, nullptr, SimTime::ms(2));
  EXPECT_EQ(dead.status, simnet::DeliveryStatus::kDropped);
  EXPECT_EQ(dead.hops, 0);
}

TEST(FaultNetwork, WireStateIsSampledAtHeadArrivalTime) {
  // A wire several hops out dies between injection and head arrival: the
  // message must still find it dead (state is sampled per hop, not at
  // injection).
  Topology t;
  const NodeId h0 = t.add_host("h0");
  const NodeId h1 = t.add_host("h1");
  NodeId prev = t.add_switch();
  t.connect(h0, 0, prev, 0);
  WireId last = 0;
  for (int i = 0; i < 3; ++i) {
    const NodeId next = t.add_switch();
    last = t.connect(prev, 1, next, 0);
    prev = next;
  }
  t.connect(prev, 1, h1, 0);

  simnet::Network probe_net(t);
  const simnet::Route route{+1, +1, +1, +1};
  const auto clean = probe_net.send(h0, route);
  ASSERT_TRUE(clean.delivered());

  // Kill the last switch-switch wire "now": a message injected slightly
  // before the instant still reaches that wire after it died.
  simnet::FaultSchedule schedule;
  schedule.link_down(last, SimTime::us(1));
  simnet::Network net(t);
  net.attach_faults(&schedule);
  const auto result = net.send(h0, route, nullptr, SimTime{});
  EXPECT_EQ(result.status, simnet::DeliveryStatus::kNoSuchWire);
}

// ------------------------------------------------------------ robust map --

TEST(RobustMapper, QuietNetworkConvergesWithFullConfidence) {
  common::Rng rng(1717);
  const Topology t = topo::random_irregular(6, 6, 3, rng);
  const NodeId mapper_host = t.hosts().front();

  simnet::Network net(t);
  probe::ProbeEngine engine(net, mapper_host);
  mapper::RobustConfig config;
  config.base.search_depth = topo::search_depth(t, mapper_host);
  const auto result = mapper::RobustMapper(engine, config).run();

  EXPECT_TRUE(result.converged);
  EXPECT_FALSE(result.partial);
  // This fabric has a dangling F-switch behind a recorded-free port; its
  // first bounce costs exactly one confirming re-exploration pass (a core
  // subtree a pass missed would bounce identically), after which it is
  // accepted as baseline.
  EXPECT_LE(result.passes, 2);
  EXPECT_TRUE(result.quarantined_ports.empty());
  EXPECT_TRUE(result.cut_off.empty());
  EXPECT_TRUE(topo::isomorphic(result.map, topo::core(t)));
  EXPECT_EQ(result.consistency_failures, 0u);
  EXPECT_GT(result.consistency_checks, 0u);
  EXPECT_EQ(result.confidence.size(), result.map.num_wires());
  for (const auto& edge : result.confidence) {
    EXPECT_EQ(edge.confidence, 1.0);
  }
}

TEST(RobustMapper, SeveredSubclusterYieldsSurvivingMapAndCutoff) {
  // Main body (redundant ring) plus a tail subcluster (switch + host)
  // hanging off one bridge wire; the bridge dies mid-session.
  Topology t = topo::ring(4, 1);
  const NodeId mapper_host = t.hosts().front();
  const NodeId tail_switch = t.add_switch("tail-s");
  const NodeId tail_host = t.add_host("tail-h");
  const WireId bridge = t.connect_any(tail_switch, t.switches().front());
  t.connect_any(tail_host, tail_switch);

  // The first pass takes ~64 ms on this fabric; a death at 60 ms lands
  // after the tail was explored but before the stability sweep reaches
  // the bridge, so the session has seen the tail and must excise it.
  simnet::FaultSchedule schedule;
  schedule.link_down(bridge, SimTime::ms(60));

  simnet::Network net(t);
  net.attach_faults(&schedule);
  probe::ProbeEngine engine(net, mapper_host);
  mapper::RobustConfig config;
  config.base.search_depth = topo::search_depth(t, mapper_host) + 2;
  const auto result = mapper::RobustMapper(engine, config).run();

  EXPECT_TRUE(result.converged);
  EXPECT_TRUE(result.partial);
  const Topology oracle =
      surviving_core(t, schedule, result.elapsed, mapper_host);
  EXPECT_TRUE(topo::isomorphic(result.map, oracle));
  EXPECT_FALSE(result.map.find_host("tail-h").has_value());
  // The fault landed after the first pass had seen the tail, so the sweep
  // excised it and reported it cut off.
  EXPECT_FALSE(result.cut_off.empty());
  EXPECT_TRUE(std::find(result.cut_off.begin(), result.cut_off.end(),
                        "tail-h") != result.cut_off.end());
}

TEST(RobustMapper, FlappingLinkIsQuarantined) {
  // Two switches joined by two parallel cables; one of them flaps. The
  // session must converge on the stable map (flapper excluded) and report
  // the flapping port quarantined instead of looping forever.
  Topology t;
  const NodeId h0 = t.add_host("m");
  const NodeId h1 = t.add_host("b");
  const NodeId s0 = t.add_switch();
  const NodeId s1 = t.add_switch();
  t.connect(h0, 0, s0, 0);
  t.connect(s0, 1, s1, 0);  // the stable cable
  const WireId flapper = t.connect(s0, 2, s1, 1);
  t.connect(s1, 2, h1, 0);

  // The mapping pass takes ~32 ms; a 64 ms period with 50% duty keeps the
  // flapper up through the pass (it gets mapped), down through the first
  // sweep's echo burst (confirmed dead, excised — transition one), and up
  // again when the next round re-probes the now-free port (transition two
  // on the far-side key: quarantine).
  simnet::FaultSchedule schedule;
  schedule.flapping_link(flapper, SimTime::ms(64), 0.5);

  simnet::Network net(t);
  net.attach_faults(&schedule);
  probe::ProbeEngine engine(net, h0);
  mapper::RobustConfig config;
  config.base.search_depth = topo::search_depth(t, h0) + 2;
  // Quiet fabric: no cross-traffic means every confirmed transition is a
  // real state change, so the second-chance remap the default threshold
  // reserves for traffic-eaten bursts is unnecessary.
  config.quarantine_threshold = 2;
  const auto result = mapper::RobustMapper(engine, config).run();

  EXPECT_TRUE(result.converged);
  EXPECT_TRUE(result.partial);
  EXPECT_FALSE(result.quarantined_ports.empty());

  // Oracle: the topology with the flapper permanently removed.
  Topology stable = t;
  stable.disconnect(flapper);
  EXPECT_TRUE(topo::isomorphic(result.map, topo::core(stable)));
}

TEST(RobustMapper, MidMappingLinkDeathsUnderCrossTraffic) {
  // The ISSUE's acceptance scenario: two links die mid-mapping while 10%
  // cross-traffic destroys probes; the session must still converge to a
  // map exactly isomorphic to the surviving core, deterministically.
  Topology t = topo::mesh(3, 3, 1);
  const NodeId mapper_host = t.hosts().front();
  const NodeId tail_switch = t.add_switch("tail-s");
  const NodeId tail_host = t.add_host("tail-h");
  const WireId bridge = t.connect_any(tail_switch, t.switches()[4]);
  t.connect_any(tail_host, tail_switch);
  // A redundant mesh link: its death must not cut anything off.
  WireId mesh_link = bridge;
  for (topo::Port p = 0; p < t.port_count(t.switches()[0]); ++p) {
    const auto far = t.peer(t.switches()[0], p);
    if (far && t.is_switch(far->node)) {
      mesh_link = *t.wire_at(t.switches()[0], p);
      break;
    }
  }
  ASSERT_NE(mesh_link, bridge);

  // The mapping pass takes ~600 ms under this loss rate; both deaths land
  // mid-pass, after the victims were explored.
  simnet::FaultSchedule schedule;
  schedule.link_down(bridge, SimTime::ms(450));
  schedule.link_down(mesh_link, SimTime::ms(500));

  simnet::FaultModel faults;
  faults.traffic_intensity = 0.10;
  simnet::Network net(t, simnet::CollisionModel::kCutThrough,
                      simnet::CostModel{}, faults, /*fault_seed=*/77);
  net.attach_faults(&schedule);
  probe::ProbeEngine engine(net, mapper_host);
  mapper::RobustConfig config;
  config.base.search_depth = topo::search_depth(t, mapper_host) + 2;
  config.initial_retries = 4;  // condition against the 10% loss floor
  const auto result = mapper::RobustMapper(engine, config).run();

  EXPECT_TRUE(result.converged);
  const Topology oracle =
      surviving_core(t, schedule, result.elapsed, mapper_host);
  EXPECT_TRUE(topo::isomorphic(result.map, oracle));
  EXPECT_TRUE(result.partial);
}

// ----------------------------------------------------------- route health --

TEST(RouteHealth, BrokenRoutesAreDetectedAndRepairedToConvergence) {
  // Map a redundant fabric, let a link die, and require the self-healing
  // loop to notice the broken routes, remap, redistribute, and converge to
  // 100% delivery on the surviving topology.
  Topology t = topo::torus(3, 3, 1);
  const NodeId mapper_host = t.hosts().front();
  const std::string master = t.name(mapper_host);
  // Victim: a switch-switch wire (the torus is redundant, so no host is
  // cut off and every route stays computable on the surviving fabric).
  WireId victim = t.wires().front();
  for (const WireId w : t.wires()) {
    const topo::Wire& wire = t.wire(w);
    if (t.is_switch(wire.a.node) && t.is_switch(wire.b.node)) {
      victim = w;
      break;
    }
  }

  simnet::FaultSchedule schedule;
  schedule.link_down(victim, SimTime::ms(150));

  simnet::Network net(t);
  net.attach_faults(&schedule);
  probe::ProbeEngine engine(net, mapper_host);

  // Initial map, taken while the fabric is intact.
  mapper::MapperConfig base;
  base.search_depth = topo::search_depth(t, mapper_host);
  const auto initial = mapper::BerkeleyMapper(engine, base).run();
  ASSERT_TRUE(topo::isomorphic(initial.map, topo::core(t)));
  ASSERT_LT(initial.elapsed, SimTime::ms(150));  // mapped before the fault

  // The self-healing loop starts after the link died: the distributed
  // routes must break and then heal.
  routing::SelfHealConfig heal;
  heal.master_name = master;
  const routing::RemapFn remap = [&](SimTime& clock) {
    engine.set_clock_base(clock);
    engine.reset();
    mapper::RobustConfig robust;
    robust.base = base;
    auto session = mapper::RobustMapper(engine, robust).run();
    clock = session.elapsed;
    return std::move(session.map);
  };
  const auto healed =
      routing::self_heal_routes(net, initial.map, heal, remap,
                                SimTime::ms(160));

  EXPECT_TRUE(healed.converged);
  EXPECT_GT(healed.total_broken, 0u);  // the dead link was actually seen
  EXPECT_GT(healed.iterations, 1);
  EXPECT_TRUE(healed.final_report.healthy());
  EXPECT_EQ(healed.final_report.delivery_ratio(), 1.0);
  EXPECT_TRUE(healed.final_distribution.complete);
  const Topology oracle =
      surviving_core(t, schedule, healed.elapsed, mapper_host);
  EXPECT_TRUE(topo::isomorphic(healed.map, oracle));

  // And the final routes replay at 100% on the surviving topology.
  const auto routes = routing::compute_updown_routes(
      healed.map, heal.updown, heal.route_seed);
  const auto replay =
      routing::check_routes(net, routes, healed.map, healed.elapsed);
  EXPECT_TRUE(replay.healthy());
}

}  // namespace
}  // namespace sanmap
