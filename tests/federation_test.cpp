// Tests for the sharded federated mapping subsystem (src/federation):
// spec parsing, fabric partitioning, and the full partition → concurrent
// region sessions → boundary resolution → certification pipeline.
#include <gtest/gtest.h>

#include <stdexcept>

#include "federation/federated_mapper.hpp"
#include "federation/partition.hpp"
#include "topology/algorithms.hpp"
#include "topology/generators.hpp"
#include "topology/isomorphism.hpp"

namespace sanmap::federation {
namespace {

using topo::NodeId;
using topo::Topology;

TEST(FederationSpec, ParsesAutoMode) {
  const FederationSpec spec = parse_federation_spec("auto:4");
  EXPECT_TRUE(spec.auto_mode());
  EXPECT_EQ(spec.auto_regions, 4);
  EXPECT_TRUE(spec.anchor_host.empty());
}

TEST(FederationSpec, ParsesAutoModeWithAnchor) {
  const FederationSpec spec = parse_federation_spec("auto:3@P1.h0");
  EXPECT_TRUE(spec.auto_mode());
  EXPECT_EQ(spec.auto_regions, 3);
  EXPECT_EQ(spec.anchor_host, "P1.h0");
}

TEST(FederationSpec, ParsesExplicitSeedsWithOptionalNames) {
  const FederationSpec spec =
      parse_federation_spec("podA=P0.h0,P1.h0,podC=P2.h1");
  ASSERT_EQ(spec.regions.size(), 3u);
  EXPECT_FALSE(spec.auto_mode());
  EXPECT_EQ(spec.regions[0].name, "podA");
  EXPECT_EQ(spec.regions[0].mapper_host, "P0.h0");
  EXPECT_TRUE(spec.regions[1].name.empty());
  EXPECT_EQ(spec.regions[1].mapper_host, "P1.h0");
  EXPECT_EQ(spec.regions[2].name, "podC");
  EXPECT_EQ(spec.regions[2].mapper_host, "P2.h1");
}

TEST(FederationSpec, RejectsMalformedSpecs) {
  EXPECT_THROW((void)parse_federation_spec(""), std::runtime_error);
  EXPECT_THROW((void)parse_federation_spec("auto"), std::runtime_error);
  EXPECT_THROW((void)parse_federation_spec("auto:zero"), std::runtime_error);
  EXPECT_THROW((void)parse_federation_spec("auto:0"), std::runtime_error);
  EXPECT_THROW((void)parse_federation_spec("a=h0,,b=h1"), std::runtime_error);
  EXPECT_THROW((void)parse_federation_spec("name="), std::runtime_error);
}

TEST(Partition, CoversEverySwitchOfTheComponentExactlyOnce) {
  const Topology t = topo::multi_pod({});
  FederationSpec spec;
  spec.auto_regions = 3;
  const RegionPlan plan = partition_fabric(t, spec);
  ASSERT_EQ(plan.regions.size(), 3u);
  EXPECT_EQ(plan.unassigned_switches, 0u);
  std::size_t assigned = 0;
  for (const Region& region : plan.regions) {
    assigned += region.switches.size();
    EXPECT_FALSE(region.name.empty());
    EXPECT_TRUE(t.is_host(region.mapper));
  }
  EXPECT_EQ(assigned, t.num_switches());
  // Pods meet at the spine, so boundaries must exist.
  EXPECT_GT(plan.boundary_switches, 0u);
}

TEST(Partition, IsDeterministic) {
  const Topology t = topo::multi_pod({});
  FederationSpec spec;
  spec.auto_regions = 4;
  const RegionPlan a = partition_fabric(t, spec);
  const RegionPlan b = partition_fabric(t, spec);
  ASSERT_EQ(a.regions.size(), b.regions.size());
  for (std::size_t r = 0; r < a.regions.size(); ++r) {
    EXPECT_EQ(a.regions[r].mapper, b.regions[r].mapper);
    EXPECT_EQ(a.regions[r].switches, b.regions[r].switches);
    EXPECT_EQ(a.regions[r].depth, b.regions[r].depth);
  }
}

TEST(Partition, DepthCoversAssignedSwitchesAndTheirHostAnchors) {
  // Every assigned switch must fit in its region's ball together with its
  // nearest host — otherwise the local session cores it out and the merged
  // map has a hole. Spot-check the invariant on the multi-pod spine (the
  // host-free switches two hops from any host).
  const Topology t = topo::multi_pod({});
  FederationSpec spec;
  spec.auto_regions = 3;
  PartitionOptions options;
  options.overlap_margin = 0;
  const RegionPlan plan = partition_fabric(t, spec, options);
  for (const Region& region : plan.regions) {
    const std::vector<int> dist = topo::bfs_distances(t, region.mapper);
    for (const NodeId s : region.switches) {
      EXPECT_GE(region.depth, dist[s]) << t.name(s);
    }
  }
}

TEST(Partition, AutoModeClampsRegionCountToHostCount) {
  const Topology t = topo::star(3, 2);  // 6 hosts
  FederationSpec spec;
  spec.auto_regions = 100;
  const RegionPlan plan = partition_fabric(t, spec);
  EXPECT_EQ(plan.regions.size(), t.num_hosts());
}

TEST(Partition, RejectsUnknownHostsAndDuplicateSeeds) {
  const Topology t = topo::star(3, 2);
  {
    FederationSpec spec;
    spec.regions.push_back({"", "nonesuch"});
    EXPECT_THROW((void)partition_fabric(t, spec), std::runtime_error);
  }
  {
    FederationSpec spec;
    spec.regions.push_back({"a", t.name(t.hosts().front())});
    spec.regions.push_back({"b", t.name(t.hosts().front())});
    EXPECT_THROW((void)partition_fabric(t, spec), std::runtime_error);
  }
}

TEST(Partition, RejectsSeedsInDisconnectedComponents) {
  // Two disjoint stars in one topology file.
  Topology t = topo::star(3, 2);
  const NodeId island_switch = t.add_switch("island");
  const NodeId island_host = t.add_host("island-host");
  t.connect_any(island_host, island_switch);
  FederationSpec spec;
  spec.regions.push_back({"main", t.name(t.hosts().front())});
  spec.regions.push_back({"island", "island-host"});
  EXPECT_THROW((void)partition_fabric(t, spec), std::runtime_error);
}

TEST(FederatedMapper, MergedMapMatchesMonolithicTruthOnMultiPod) {
  const Topology t = topo::multi_pod({});
  FederationConfig config;
  config.spec.auto_regions = 3;
  FederatedMapper federated(t, config);
  EXPECT_EQ(federated.plan().regions.size(), 3u);
  const FederatedResult result = federated.run();
  EXPECT_TRUE(topo::isomorphic(result.map, topo::core(t)))
      << result.map.num_hosts() << "h/" << result.map.num_switches() << "s/"
      << result.map.num_wires() << "w";
  EXPECT_TRUE(result.certified) << (result.uncertified_reasons.empty()
                                        ? ""
                                        : result.uncertified_reasons.front());
  EXPECT_TRUE(result.routes.has_value());
  EXPECT_GT(result.boundary_switches, 0u);
  EXPECT_GT(result.boundary_conflicts, 0u);
  ASSERT_EQ(result.regions.size(), 3u);
  for (const RegionOutcome& region : result.regions) {
    EXPECT_GT(region.probes, 0u);
    EXPECT_GT(region.nodes_mapped, 0u);
    EXPECT_FALSE(region.budget_exceeded);
  }
}

TEST(FederatedMapper, ExplicitSeedsOnTheNowCluster) {
  const Topology t = topo::now_cluster();
  FederationConfig config;
  config.spec = parse_federation_spec("a=A.util,b=B.util,c=C.util");
  const FederatedResult result = FederatedMapper(t, config).run();
  EXPECT_TRUE(topo::isomorphic(result.map, topo::core(t)));
  EXPECT_TRUE(result.certified);
  EXPECT_EQ(result.regions[0].name, "a");
  EXPECT_EQ(result.regions[1].name, "b");
  EXPECT_EQ(result.regions[2].name, "c");
}

TEST(FederatedMapper, ElapsedIsMaxOverRegionsPlusMergeCharge) {
  const Topology t = topo::multi_pod({});
  FederationConfig config;
  config.spec.auto_regions = 4;
  const FederatedResult result = FederatedMapper(t, config).run();
  common::SimTime slowest{};
  std::uint64_t probes = 0;
  for (const RegionOutcome& region : result.regions) {
    slowest = std::max(slowest, region.elapsed);
    probes += region.probes;
  }
  EXPECT_EQ(result.total_probes, probes);
  EXPECT_EQ(result.elapsed,
            slowest + config.merge_cost_per_vertex *
                          static_cast<std::int64_t>(
                              result.merge.loaded_vertices));
}

TEST(FederatedMapper, ThrowingRegionPropagatesWithoutDeadlock) {
  // One region's mapper dies mid-session: the pool must finish the other
  // regions, then rethrow — never hang, never hand back a half-merged map.
  const Topology t = topo::multi_pod({});
  FederationConfig config;
  config.spec.auto_regions = 3;
  config.sabotage_region_throw = 1;
  FederatedMapper federated(t, config);
  EXPECT_THROW((void)federated.run(), std::runtime_error);
  // The mapper object survives the failed run and can run clean afterwards.
  config.sabotage_region_throw = -1;
  const FederatedResult result = FederatedMapper(t, config).run();
  EXPECT_TRUE(result.certified);
}

TEST(FederatedMapper, ProbeBudgetOverrunIsFlaggedNotFatal) {
  const Topology t = topo::multi_pod({});
  FederationConfig config;
  config.spec.auto_regions = 2;
  config.region_probe_budget = 1;  // absurdly small: every region overruns
  const FederatedResult result = FederatedMapper(t, config).run();
  EXPECT_TRUE(result.budget_exceeded);
  for (const RegionOutcome& region : result.regions) {
    EXPECT_TRUE(region.budget_exceeded);
  }
  // The session still completes and the map is still whole: the budget is
  // an operator signal, not an abort (a partial map would poison the merge).
  EXPECT_TRUE(topo::isomorphic(result.map, topo::core(t)));
}

TEST(FederatedMapper, UnsatisfiableSpecThrowsAtConstruction) {
  const Topology t = topo::multi_pod({});
  FederationConfig config;
  config.spec.regions.push_back({"", "no-such-host"});
  EXPECT_THROW((void)FederatedMapper(t, config), std::runtime_error);
}

TEST(FederatedMapper, SingleRegionDegeneratesToMonolithic) {
  const Topology t = topo::star(4, 2);
  FederationConfig config;
  config.spec.auto_regions = 1;
  const FederatedResult result = FederatedMapper(t, config).run();
  EXPECT_TRUE(topo::isomorphic(result.map, topo::core(t)));
  EXPECT_TRUE(result.certified);
  EXPECT_EQ(result.boundary_switches, 0u);
}

}  // namespace
}  // namespace sanmap::federation
