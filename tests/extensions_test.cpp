// Tests for the §6 future-work extensions: hardware extension plumbing,
// wild probes, self-identifying switch probes, the randomized
// (coupon-collecting) mapper, and the self-identifying-switch mapper.
#include <gtest/gtest.h>

#include "mapper/berkeley_mapper.hpp"
#include "mapper/id_mapper.hpp"
#include "mapper/randomized_mapper.hpp"
#include "probe/probe_engine.hpp"
#include "simnet/network.hpp"
#include "topology/algorithms.hpp"
#include "topology/generators.hpp"
#include "topology/isomorphism.hpp"

namespace sanmap::mapper {
namespace {

using probe::ProbeEngine;
using simnet::CollisionModel;
using simnet::HardwareExtensions;
using simnet::Network;
using simnet::Route;
using topo::NodeId;
using topo::Topology;

Network extended_net(const Topology& t) {
  HardwareExtensions ext;
  ext.self_identifying_switches = true;
  ext.hosts_answer_early_hits = true;
  return Network(t, CollisionModel::kCutThrough, simnet::CostModel{},
                 simnet::FaultModel{}, 1, ext);
}

/// h0 -- s0 -- s1 -- h1 with known ports (the usual line fixture).
struct Line {
  Topology topo;
  NodeId h0, s0, s1, h1;

  Line() {
    h0 = topo.add_host("h0");
    s0 = topo.add_switch();
    s1 = topo.add_switch();
    h1 = topo.add_host("h1");
    topo.connect(h0, 0, s0, 2);
    topo.connect(s0, 5, s1, 1);
    topo.connect(s1, 4, h1, 0);
  }
};

// ---------------------------------------------------------- wild probes ----

TEST(WildProbe, RequiresFirmwareExtension) {
  Line line;
  Network plain(line.topo);
  ProbeEngine engine(plain, line.h0);
  EXPECT_THROW((void)engine.wild_probe(Route{3, 3}), common::CheckFailure);
}

TEST(WildProbe, ReportsConsumedTurnsOnEarlyHit) {
  Line line;
  Network net = extended_net(line.topo);
  ProbeEngine engine(net, line.h0);
  // +3 +3 reaches h1 exactly; extra garbage turns would be unconsumed.
  const auto exact = engine.wild_probe(Route{3, 3});
  ASSERT_TRUE(exact.has_value());
  EXPECT_EQ(exact->host_name, "h1");
  EXPECT_EQ(exact->consumed_turns, 2);

  const auto early = engine.wild_probe(Route{3, 3, 7, -2, 5});
  ASSERT_TRUE(early.has_value());
  EXPECT_EQ(early->host_name, "h1");
  EXPECT_EQ(early->consumed_turns, 2);  // hit h1 with 3 flits remaining
}

TEST(WildProbe, DeadRoutesReturnNothing) {
  Line line;
  Network net = extended_net(line.topo);
  ProbeEngine engine(net, line.h0);
  EXPECT_EQ(engine.wild_probe(Route{6, 1, 1}), std::nullopt);  // illegal turn
  EXPECT_EQ(engine.wild_probe(Route{3}), std::nullopt);        // stranded
  EXPECT_EQ(engine.counters().wild_probes, 2u);
  EXPECT_EQ(engine.counters().wild_hits, 0u);
}

// ------------------------------------------- identifying switch probes ----

TEST(IdentifyingProbe, RequiresHardwareExtension) {
  Line line;
  Network plain(line.topo);
  ProbeEngine engine(plain, line.h0);
  EXPECT_THROW((void)engine.identifying_switch_probe(Route{}),
               common::CheckFailure);
}

TEST(IdentifyingProbe, ReturnsTheBounceSwitchIdentity) {
  Line line;
  Network net = extended_net(line.topo);
  ProbeEngine engine(net, line.h0);
  EXPECT_EQ(engine.identifying_switch_probe(Route{}), line.s0);
  EXPECT_EQ(engine.identifying_switch_probe(Route{3}), line.s1);
  EXPECT_EQ(engine.identifying_switch_probe(Route{3, 3}), std::nullopt);
}

TEST(IdentifyingProbe, EchoProbeCountsAsSwitchCategory) {
  Line line;
  Network net = extended_net(line.topo);
  ProbeEngine engine(net, line.h0);
  EXPECT_TRUE(engine.echo_probe(simnet::loopback_probe(Route{})));
  EXPECT_FALSE(engine.echo_probe(Route{1, 1, 1}));
  EXPECT_EQ(engine.counters().switch_probes, 2u);
  EXPECT_EQ(engine.counters().switch_hits, 1u);
}

// ------------------------------------------------------ randomized mapper --

RandomizedConfig randomized_config(const Topology& t, NodeId mapper,
                                   int wild, std::uint64_t seed) {
  RandomizedConfig config;
  config.base.search_depth = topo::search_depth(t, mapper);
  config.wild_probes = wild;
  config.seed = seed;
  return config;
}

TEST(RandomizedMapper, MapsSubclusterC) {
  const Topology t = topo::now_subcluster(topo::Subcluster::kC, "C");
  const NodeId mapper = *t.find_host("C.util");
  Network net = extended_net(t);
  ProbeEngine engine(net, mapper);
  const auto result =
      RandomizedMapper(engine, randomized_config(t, mapper, 150, 3)).run();
  EXPECT_TRUE(topo::isomorphic(result.map, topo::core(t)));
  EXPECT_GT(result.probes.wild_probes, 0u);
  EXPECT_GT(result.probes.wild_hits, 0u);
}

TEST(RandomizedMapper, ZeroWildProbesDegradesToBerkeley) {
  const Topology t = topo::star(3, 2);
  const NodeId mapper = t.hosts().front();
  Network net = extended_net(t);
  ProbeEngine engine(net, mapper);
  const auto result =
      RandomizedMapper(engine, randomized_config(t, mapper, 0, 3)).run();
  EXPECT_TRUE(topo::isomorphic(result.map, topo::core(t)));
  EXPECT_EQ(result.probes.wild_probes, 0u);
}

TEST(RandomizedMapper, SeedSweepAlwaysCorrect) {
  common::Rng rng(404);
  for (int trial = 0; trial < 6; ++trial) {
    common::Rng topo_rng(rng.next());
    const Topology t = topo::random_irregular(8, 8, 4, topo_rng);
    const NodeId mapper = t.hosts().front();
    Network net = extended_net(t);
    ProbeEngine engine(net, mapper);
    const auto result =
        RandomizedMapper(engine,
                         randomized_config(t, mapper, 100, rng.next()))
            .run();
    EXPECT_TRUE(topo::isomorphic(result.map, topo::core(t)))
        << "trial " << trial;
  }
}

TEST(RandomizedMapper, WildPhaseReducesDirectedProbes) {
  // The coupon phase pre-identifies much of the core, so the BFS phase
  // needs fewer host/switch probe pairs than pure Berkeley.
  const Topology t = topo::now_system(topo::NowSystem::kCAB);
  const NodeId mapper = *t.find_host("C.util");

  Network net1 = extended_net(t);
  ProbeEngine engine1(net1, mapper);
  MapperConfig base;
  base.search_depth = topo::search_depth(t, mapper);
  const auto berkeley = BerkeleyMapper(engine1, base).run();

  Network net2 = extended_net(t);
  ProbeEngine engine2(net2, mapper);
  const auto randomized =
      RandomizedMapper(engine2, randomized_config(t, mapper, 400, 5)).run();

  EXPECT_TRUE(topo::isomorphic(randomized.map, berkeley.map));
  EXPECT_LT(randomized.probes.host_probes + randomized.probes.switch_probes,
            berkeley.probes.host_probes + berkeley.probes.switch_probes);
}

// -------------------------------------------------------------- id mapper --

TEST(IdMapper, RequiresTheHardware) {
  Line line;
  Network plain(line.topo);
  ProbeEngine engine(plain, line.h0);
  EXPECT_THROW(IdMapper bad(engine), common::CheckFailure);
}

TEST(IdMapper, MapsTheLineNetwork) {
  Line line;
  Network net = extended_net(line.topo);
  ProbeEngine engine(net, line.h0);
  const auto result = IdMapper(engine).run();
  EXPECT_TRUE(topo::isomorphic(result.map, line.topo));
  EXPECT_EQ(result.switches, 2u);
  EXPECT_EQ(result.alignment_probes, 0u);  // a tree needs no alignment
}

TEST(IdMapper, CrossLinksNeedAlignmentProbes) {
  const Topology t = topo::ring(5, 1);
  Network net = extended_net(t);
  ProbeEngine engine(net, t.hosts().front());
  const auto result = IdMapper(engine).run();
  EXPECT_TRUE(topo::isomorphic(result.map, t));
  EXPECT_EQ(result.switches, 5u);
  EXPECT_GT(result.alignment_probes, 0u);
}

TEST(IdMapper, MapsParallelWiresAndLoopbackCables) {
  Topology t;
  const NodeId h0 = t.add_host("h0");
  const NodeId h1 = t.add_host("h1");
  const NodeId s0 = t.add_switch();
  const NodeId s1 = t.add_switch();
  t.connect(h0, 0, s0, 0);
  t.connect(s0, 1, s1, 1);
  t.connect(s0, 2, s1, 2);
  t.connect(s1, 4, s1, 6);
  t.connect(h1, 0, s1, 0);
  Network net = extended_net(t);
  ProbeEngine engine(net, h0);
  const auto result = IdMapper(engine).run();
  EXPECT_TRUE(topo::isomorphic(result.map, t));
}

TEST(IdMapper, MapsHostFreeRegions) {
  // Like Myricom, identity-based mapping covers F.
  common::Rng rng(31);
  const Topology t = topo::with_switch_tail(4, 5, 2, rng);
  Network net = extended_net(t);
  ProbeEngine engine(net, t.hosts().front());
  const auto result = IdMapper(engine).run();
  EXPECT_TRUE(topo::isomorphic(result.map, t));
}

TEST(IdMapper, ExploresEachSwitchOnceAndBeatsBerkeleyOnProbes) {
  const Topology t = topo::now_subcluster(topo::Subcluster::kC, "C");
  const NodeId mapper = *t.find_host("C.util");
  Network net = extended_net(t);
  ProbeEngine engine(net, mapper);
  const auto with_ids = IdMapper(engine).run();
  EXPECT_TRUE(topo::isomorphic(with_ids.map, t));
  EXPECT_EQ(with_ids.switches, t.num_switches());

  Network plain(t);
  ProbeEngine plain_engine(plain, mapper);
  MapperConfig config;
  config.search_depth = topo::search_depth(t, mapper);
  const auto berkeley = BerkeleyMapper(plain_engine, config).run();
  EXPECT_LT(with_ids.probes.total(), berkeley.probes.total());
}

TEST(IdMapper, RandomNetworkSweep) {
  common::Rng rng(606);
  for (int trial = 0; trial < 6; ++trial) {
    common::Rng topo_rng(rng.next());
    const Topology t = topo::random_irregular(3 + trial, 4, trial, topo_rng);
    Network net = extended_net(t);
    ProbeEngine engine(net, t.hosts().front());
    const auto result = IdMapper(engine).run();
    EXPECT_TRUE(topo::isomorphic(result.map, t)) << "trial " << trial;
  }
}

}  // namespace
}  // namespace sanmap::mapper
