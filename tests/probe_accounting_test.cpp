// Exact probe-clock accounting: every probe category (switch, host, echo,
// identifying, wild) crossed with every outcome (answered, timeout,
// retries, non-participating target) asserts the precise elapsed() value
// on the virtual clock, to the nanosecond.
//
// This suite pins the engine's charge taxonomy:
//
//  * an answered probe costs send_overhead + latency + receive_overhead
//    per round trip (host and wild probes make two trips — the reply
//    retraces the path);
//  * every rejected attempt in the retry loop costs send_overhead +
//    probe_timeout, and a probe with retries = r makes r + 1 attempts;
//  * a probe that *reaches* a non-participating host is accepted by the
//    network (resending cannot wake a daemon that is not running), so it
//    costs exactly one send_overhead + probe_timeout regardless of the
//    retry budget — and nothing more. The wild-probe path used to charge
//    the final timeout twice; the regressions here fail under that bug.
#include <gtest/gtest.h>

#include "probe/probe_engine.hpp"
#include "simnet/route.hpp"

namespace sanmap::probe {
namespace {

using common::SimTime;
using simnet::HardwareExtensions;
using simnet::Network;
using simnet::Route;
using topo::NodeId;
using topo::Topology;

/// h0 -- s0 -- s1 -- h1 (same fixture as probe_test / simnet_test).
struct Line {
  Topology topo;
  NodeId h0, s0, s1, h1;

  Line() {
    h0 = topo.add_host("h0");
    s0 = topo.add_switch();
    s1 = topo.add_switch();
    h1 = topo.add_host("h1");
    topo.connect(h0, 0, s0, 2);
    topo.connect(s0, 5, s1, 1);
    topo.connect(s1, 4, h1, 0);
  }
};

Network extended_net(const Topology& topo) {
  HardwareExtensions ext;
  ext.self_identifying_switches = true;
  ext.hosts_answer_early_hits = true;
  return Network(topo, simnet::CollisionModel::kCutThrough, {}, {}, 1, ext);
}

/// One-way flight time of `route`, from the simulator itself (quiescent
/// network: deterministic, independent of the injection instant).
SimTime flight(Network& net, NodeId src, const Route& route) {
  return net.send(src, route).latency;
}

// --- switch probes -------------------------------------------------------

TEST(ProbeAccounting, SwitchProbeAnswered) {
  Line line;
  Network net(line.topo);
  const auto& cost = net.cost();
  const Route wire = simnet::loopback_probe(Route{3});
  ProbeEngine engine(net, line.h0);
  EXPECT_TRUE(engine.switch_probe(Route{3}));
  EXPECT_EQ(engine.elapsed().to_ns(),
            (cost.send_overhead + flight(net, line.h0, wire) +
             cost.receive_overhead)
                .to_ns());
}

TEST(ProbeAccounting, SwitchProbeTimeout) {
  Line line;
  Network net(line.topo);
  const auto& cost = net.cost();
  ProbeEngine engine(net, line.h0);
  EXPECT_FALSE(engine.switch_probe(Route{1}));  // free port on s0
  EXPECT_EQ(engine.elapsed().to_ns(),
            (cost.send_overhead + cost.probe_timeout).to_ns());
}

TEST(ProbeAccounting, SwitchProbeRetriesChargeEveryAttempt) {
  Line line;
  Network net(line.topo);
  const auto& cost = net.cost();
  ProbeEngine engine(net, line.h0);
  engine.set_retries(2);  // 3 attempts total
  EXPECT_FALSE(engine.switch_probe(Route{1}));
  EXPECT_EQ(engine.counters().switch_probes, 3u);
  EXPECT_EQ(engine.elapsed().to_ns(),
            ((cost.send_overhead + cost.probe_timeout) * 3).to_ns());
}

TEST(ProbeAccounting, SwitchProbeIgnoresParticipation) {
  // Switch probes are answered by hardware, not daemons: the cost is the
  // full-participation cost even when no host runs a daemon.
  Line line;
  Network net(line.topo);
  const auto& cost = net.cost();
  const Route wire = simnet::loopback_probe(Route{3});
  ProbeOptions options;
  options.participants = {line.h0};
  ProbeEngine engine(net, line.h0, options);
  EXPECT_TRUE(engine.switch_probe(Route{3}));
  EXPECT_EQ(engine.elapsed().to_ns(),
            (cost.send_overhead + flight(net, line.h0, wire) +
             cost.receive_overhead)
                .to_ns());
}

// --- host probes ---------------------------------------------------------

TEST(ProbeAccounting, HostProbeAnsweredIsTwoRoundLegs) {
  Line line;
  Network net(line.topo);
  const auto& cost = net.cost();
  const SimTime leg =
      cost.send_overhead + flight(net, line.h0, Route{3, 3}) +
      cost.receive_overhead;
  ProbeEngine engine(net, line.h0);
  EXPECT_EQ(engine.host_probe(Route{3, 3}), "h1");
  EXPECT_EQ(engine.elapsed().to_ns(), (leg + leg).to_ns());
}

TEST(ProbeAccounting, HostProbeTimeout) {
  Line line;
  Network net(line.topo);
  const auto& cost = net.cost();
  ProbeEngine engine(net, line.h0);
  EXPECT_EQ(engine.host_probe(Route{3}), std::nullopt);  // strands at s1
  EXPECT_EQ(engine.elapsed().to_ns(),
            (cost.send_overhead + cost.probe_timeout).to_ns());
}

TEST(ProbeAccounting, HostProbeRetriesChargeEveryAttempt) {
  Line line;
  Network net(line.topo);
  const auto& cost = net.cost();
  ProbeEngine engine(net, line.h0);
  engine.set_retries(2);
  EXPECT_EQ(engine.host_probe(Route{3}), std::nullopt);
  EXPECT_EQ(engine.counters().host_probes, 3u);
  EXPECT_EQ(engine.elapsed().to_ns(),
            ((cost.send_overhead + cost.probe_timeout) * 3).to_ns());
}

TEST(ProbeAccounting, HostProbeNonParticipantIsOneTimeoutNoRetries) {
  // The message *reaches* h1 (delivery accepted, so the retry loop does not
  // spin), h1's missing daemon never answers, and the mapper waits out one
  // timeout — even with a retry budget.
  Line line;
  Network net(line.topo);
  const auto& cost = net.cost();
  ProbeOptions options;
  options.participants = {line.h0};
  options.retries = 2;
  ProbeEngine engine(net, line.h0, options);
  EXPECT_EQ(engine.host_probe(Route{3, 3}), std::nullopt);
  EXPECT_EQ(engine.counters().host_probes, 1u);
  EXPECT_EQ(engine.elapsed().to_ns(),
            (cost.send_overhead + cost.probe_timeout).to_ns());
}

// --- echo probes ---------------------------------------------------------

TEST(ProbeAccounting, EchoProbeAnswered) {
  Line line;
  Network net(line.topo);
  const auto& cost = net.cost();
  const Route wire = simnet::loopback_probe(Route{3});
  ProbeEngine engine(net, line.h0);
  EXPECT_TRUE(engine.echo_probe(wire));  // echo takes the full route as-is
  EXPECT_EQ(engine.elapsed().to_ns(),
            (cost.send_overhead + flight(net, line.h0, wire) +
             cost.receive_overhead)
                .to_ns());
}

TEST(ProbeAccounting, EchoProbeTimeout) {
  Line line;
  Network net(line.topo);
  const auto& cost = net.cost();
  ProbeEngine engine(net, line.h0);
  EXPECT_FALSE(engine.echo_probe(Route{3}));  // never returns to h0
  EXPECT_EQ(engine.elapsed().to_ns(),
            (cost.send_overhead + cost.probe_timeout).to_ns());
}

// --- identifying switch probes ------------------------------------------

TEST(ProbeAccounting, IdentifyingProbeAnswered) {
  Line line;
  Network net = extended_net(line.topo);
  const auto& cost = net.cost();
  const Route wire = simnet::loopback_probe(Route{3});
  ProbeEngine engine(net, line.h0);
  EXPECT_EQ(engine.identifying_switch_probe(Route{3}), line.s1);
  EXPECT_EQ(engine.elapsed().to_ns(),
            (cost.send_overhead + flight(net, line.h0, wire) +
             cost.receive_overhead)
                .to_ns());
}

TEST(ProbeAccounting, IdentifyingProbeTimeout) {
  Line line;
  Network net = extended_net(line.topo);
  const auto& cost = net.cost();
  ProbeEngine engine(net, line.h0);
  EXPECT_EQ(engine.identifying_switch_probe(Route{1}), std::nullopt);
  EXPECT_EQ(engine.elapsed().to_ns(),
            (cost.send_overhead + cost.probe_timeout).to_ns());
}

// --- wild probes ---------------------------------------------------------

TEST(ProbeAccounting, WildProbeAnsweredIsTwoRoundLegs) {
  Line line;
  Network net = extended_net(line.topo);
  const auto& cost = net.cost();
  const SimTime leg =
      cost.send_overhead + flight(net, line.h0, Route{3, 3}) +
      cost.receive_overhead;
  ProbeEngine engine(net, line.h0);
  const auto response = engine.wild_probe(Route{3, 3});
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->host_name, "h1");
  EXPECT_EQ(engine.elapsed().to_ns(), (leg + leg).to_ns());
}

TEST(ProbeAccounting, WildProbeTimeoutChargedExactlyOnce) {
  // Regression: the timed-out path used to charge send_overhead +
  // probe_timeout *again* on top of the identical charge the retry loop
  // had already applied to the final rejected attempt, so a wild miss with
  // retries = 0 cost two timeouts instead of one.
  Line line;
  Network net = extended_net(line.topo);
  const auto& cost = net.cost();
  ProbeEngine engine(net, line.h0);
  EXPECT_EQ(engine.wild_probe(Route{3}), std::nullopt);  // strands at s1
  EXPECT_EQ(engine.counters().wild_probes, 1u);
  EXPECT_EQ(engine.elapsed().to_ns(),
            (cost.send_overhead + cost.probe_timeout).to_ns());
}

TEST(ProbeAccounting, WildProbeRetriesChargeEveryAttemptOnlyOnce) {
  // With retries = 2 the double-charge bug cost 4 timeouts; the correct
  // total is 3 (one per attempt).
  Line line;
  Network net = extended_net(line.topo);
  const auto& cost = net.cost();
  ProbeEngine engine(net, line.h0);
  engine.set_retries(2);
  EXPECT_EQ(engine.wild_probe(Route{3}), std::nullopt);
  EXPECT_EQ(engine.counters().wild_probes, 3u);
  EXPECT_EQ(engine.elapsed().to_ns(),
            ((cost.send_overhead + cost.probe_timeout) * 3).to_ns());
}

TEST(ProbeAccounting, WildProbeNonParticipantIsOneTimeoutNoRetries) {
  Line line;
  Network net = extended_net(line.topo);
  const auto& cost = net.cost();
  ProbeOptions options;
  options.participants = {line.h0};
  options.retries = 2;
  ProbeEngine engine(net, line.h0, options);
  EXPECT_EQ(engine.wild_probe(Route{3, 3}), std::nullopt);
  EXPECT_EQ(engine.counters().wild_probes, 1u);
  EXPECT_EQ(engine.elapsed().to_ns(),
            (cost.send_overhead + cost.probe_timeout).to_ns());
}

// --- election ------------------------------------------------------------

TEST(ProbeAccounting, ElectionFirstContactAddsExactlyOneArbitration) {
  Line line;
  Network net(line.topo);
  const auto& cost = net.cost();
  const SimTime leg =
      cost.send_overhead + flight(net, line.h0, Route{3, 3}) +
      cost.receive_overhead;
  ProbeOptions options;
  options.election = true;
  ProbeEngine engine(net, line.h0, options);
  const SimTime offset = engine.elapsed();  // the delayed start, pre-charged
  EXPECT_GT(offset.to_ns(), 0);
  EXPECT_EQ(engine.host_probe(Route{3, 3}), "h1");
  EXPECT_EQ(engine.elapsed().to_ns(),
            (offset + leg + leg + options.election_arbitration).to_ns());
  // Second contact: the contender stays yielded, so a plain round trip.
  EXPECT_EQ(engine.host_probe(Route{3, 3}), "h1");
  EXPECT_EQ(engine.elapsed().to_ns(),
            (offset + (leg + leg) * 2 + options.election_arbitration).to_ns());
}

}  // namespace
}  // namespace sanmap::probe
