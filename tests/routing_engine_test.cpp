// The routing::Engine interface: the DFS-order load-aware engine next to
// UP*/DOWN*, the Mendlovic–Matias acyclicity checker, the RouteOptimizer,
// and the regressions this PR fixes — SL403 consuming the engine's cable
// plan, self_heal_routes escalating on an unroutable partial remap, the
// paranoid gate diffing the certified route set, and the snapshot codec
// carrying engine + optimizer provenance (v2, with v1 back-compat).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "analysis/analyzer.hpp"
#include "analysis/certificates.hpp"
#include "common/check.hpp"
#include "common/rng.hpp"
#include "routing/congestion.hpp"
#include "routing/deadlock.hpp"
#include "routing/engine.hpp"
#include "routing/optimizer.hpp"
#include "routing/route_health.hpp"
#include "routing/routes.hpp"
#include "service/map_catalog.hpp"
#include "service/snapshot.hpp"
#include "service/snapshot_codec.hpp"
#include "simnet/network.hpp"
#include "topology/generators.hpp"
#include "verify/scenario_case.hpp"

namespace {

using namespace sanmap;

bool same_tables(const routing::RoutingResult& a,
                 const routing::RoutingResult& b) {
  if (a.routes.size() != b.routes.size()) {
    return false;
  }
  for (const auto& [key, route] : a.routes) {
    const auto it = b.routes.find(key);
    if (it == b.routes.end() || it->second.nodes != route.nodes ||
        it->second.wires != route.wires || it->second.turns != route.turns) {
      return false;
    }
  }
  return a.meta.cable_plan == b.meta.cable_plan;
}

/// Full certification stack for a table: 3-color DFS acyclicity, order
/// compliance, the MM condition, and both analysis-layer certificates
/// surviving their independent re-checkers.
::testing::AssertionResult certifies(const topo::Topology& t,
                                     const routing::RoutingResult& routes) {
  const auto paths = routing::route_channel_paths(t, routes);
  const auto dfs3 = routing::analyze_channel_paths(t, paths);
  if (!dfs3.deadlock_free) {
    return ::testing::AssertionFailure() << "3-color DFS found a cycle";
  }
  if (!routing::updown_compliant(routes)) {
    return ::testing::AssertionFailure() << "a down-to-up turn slipped in";
  }
  const auto mm = routing::check_mm_condition(t, paths);
  if (!mm.holds) {
    return ::testing::AssertionFailure() << "MM condition violated";
  }
  std::vector<std::string> why;
  const auto legality = analysis::build_legality_certificate(t, routes);
  if (!legality.all_legal ||
      !analysis::check_legality(t, routes, legality, &why)) {
    return ::testing::AssertionFailure()
           << "legality certificate failed: "
           << (why.empty() ? "illegal route" : why.front());
  }
  const auto deadlock = analysis::build_deadlock_certificate(t, paths);
  if (!deadlock.deadlock_free ||
      !analysis::check_deadlock(paths, deadlock, &why)) {
    return ::testing::AssertionFailure()
           << "deadlock certificate failed: "
           << (why.empty() ? "cycle recorded" : why.front());
  }
  return ::testing::AssertionSuccess();
}

TEST(Engine, RegistryAndParsing) {
  EXPECT_EQ(routing::engine_for(routing::EngineKind::kUpDown).name(),
            std::string("updown"));
  EXPECT_EQ(routing::engine_for(routing::EngineKind::kDfs).name(),
            std::string("dfs"));
  EXPECT_EQ(routing::parse_engine("dfs"), routing::EngineKind::kDfs);
  EXPECT_EQ(routing::parse_engine("updown"), routing::EngineKind::kUpDown);
  EXPECT_FALSE(routing::parse_engine("bfs").has_value());
  EXPECT_STREQ(routing::to_string(routing::EngineKind::kDfs), "dfs");
}

TEST(Engine, DfsCertifiesOnTheNowCluster) {
  const topo::Topology t = topo::now_cluster();
  const auto routes = routing::compute_routes(t, routing::EngineKind::kDfs);
  EXPECT_EQ(routes.meta.engine, routing::EngineKind::kDfs);
  EXPECT_FALSE(routes.meta.optimized);
  EXPECT_EQ(routes.routes.size(),
            t.num_hosts() * (t.num_hosts() - 1));
  EXPECT_TRUE(certifies(t, routes));
}

TEST(Engine, DfsIsDeterministicAndSeedIndependent) {
  const topo::Topology t = topo::now_cluster();
  const auto a = routing::compute_routes(t, routing::EngineKind::kDfs, {}, 1);
  const auto b = routing::compute_routes(t, routing::EngineKind::kDfs, {}, 99);
  EXPECT_TRUE(same_tables(a, b));
}

TEST(Engine, DfsCutsMaxChannelLoadOnFig5) {
  const topo::Topology t = topo::now_cluster();
  const auto updown =
      routing::compute_routes(t, routing::EngineKind::kUpDown);
  const auto dfs = routing::compute_routes(t, routing::EngineKind::kDfs);
  const auto lu = routing::channel_load(t, updown);
  const auto ld = routing::channel_load(t, dfs);
  EXPECT_LT(ld.max_channel_load, lu.max_channel_load);
}

// The 200-topology property sweep: both engines must produce tables whose
// channel-dependency graph satisfies the Mendlovic–Matias condition, in
// agreement with the Kahn-based DeadlockCertificate checker and the 3-color
// DFS — three independent acyclicity algorithms, one verdict.
TEST(Engine, MmConditionHoldsOn200RandomTopologies) {
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    common::Rng rng(seed);
    // 8 ports a switch: the spanning tree burns 2(s-1) ends and each extra
    // link 2 more, so hosts <= 2s and extras <= s always leave free ports.
    const int switches = static_cast<int>(2 + rng.below(10));
    const int hosts = static_cast<int>(
        2 + rng.below(static_cast<std::uint64_t>(2 * switches - 1)));
    const int extra = static_cast<int>(rng.below(
        static_cast<std::uint64_t>(switches)));
    const topo::Topology t =
        topo::random_irregular(switches, hosts, extra, rng);
    for (const auto kind :
         {routing::EngineKind::kUpDown, routing::EngineKind::kDfs}) {
      const auto routes = routing::compute_routes(t, kind, {}, seed);
      const auto paths = routing::route_channel_paths(t, routes);
      const auto mm = routing::check_mm_condition(t, paths);
      const auto dfs3 = routing::analyze_channel_paths(t, paths);
      const auto cert = analysis::build_deadlock_certificate(t, paths);
      std::vector<std::string> why;
      ASSERT_TRUE(mm.holds) << "seed " << seed << " engine "
                            << routing::to_string(kind);
      ASSERT_EQ(mm.holds, dfs3.deadlock_free) << "seed " << seed;
      ASSERT_EQ(mm.holds, cert.deadlock_free) << "seed " << seed;
      ASSERT_TRUE(analysis::check_deadlock(paths, cert, &why))
          << "seed " << seed << ": "
          << (why.empty() ? "?" : why.front());
      ASSERT_TRUE(routing::updown_compliant(routes)) << "seed " << seed;
    }
  }
}

TEST(Optimizer, HoldsSafetyAndNeverWorsensTheMax) {
  const topo::Topology t = topo::now_cluster();
  for (const auto kind :
       {routing::EngineKind::kUpDown, routing::EngineKind::kDfs}) {
    auto routes = routing::compute_routes(t, kind);
    const auto report = routing::optimize_routes(t, routes);
    EXPECT_LE(report.max_load_after, report.max_load_before)
        << routing::to_string(kind);
    EXPECT_TRUE(routes.meta.optimized);
    EXPECT_TRUE(certifies(t, routes)) << routing::to_string(kind);
  }
}

TEST(Optimizer, IsDeterministic) {
  const topo::Topology t = topo::now_cluster();
  auto a = routing::compute_routes(t, routing::EngineKind::kUpDown);
  auto b = routing::compute_routes(t, routing::EngineKind::kUpDown);
  routing::optimize_routes(t, a);
  routing::optimize_routes(t, b);
  EXPECT_TRUE(same_tables(a, b));
}

TEST(Optimizer, RebalancesASkewedParallelTrunk) {
  // Two switches joined by two cables, three hosts a side: whatever the
  // seed dealt, the optimizer's cable pass must leave the trunk's joint
  // (both-direction) loads within one route of each other.
  topo::Topology t;
  const auto s0 = t.add_switch("s0");
  const auto s1 = t.add_switch("s1");
  const topo::WireId w0 = t.connect(s0, 0, s1, 0);
  const topo::WireId w1 = t.connect(s0, 1, s1, 1);
  for (int i = 0; i < 3; ++i) {
    t.connect(t.add_host("a" + std::to_string(i)), 0, s0,
              static_cast<topo::Port>(2 + i));
    t.connect(t.add_host("b" + std::to_string(i)), 0, s1,
              static_cast<topo::Port>(2 + i));
  }
  auto routes = routing::compute_routes(t, routing::EngineKind::kUpDown);
  routing::optimize_routes(t, routes);
  EXPECT_TRUE(certifies(t, routes));
  std::size_t joint0 = 0;
  std::size_t joint1 = 0;
  for (const auto& [key, route] : routes.routes) {
    for (const topo::WireId w : route.wires) {
      if (w == w0) {
        ++joint0;
      }
      if (w == w1) {
        ++joint1;
      }
    }
  }
  const std::size_t hi = std::max(joint0, joint1);
  const std::size_t lo = std::min(joint0, joint1);
  EXPECT_LE(hi - lo, 1u) << "trunk skew " << joint0 << " vs " << joint1;
  // And the optimizer re-declared its deal so SL403 audits intent.
  EXPECT_EQ(routes.meta.cable_plan.size(), 4u);
}

// Regression (SL403): the skew lint used to re-derive a per-direction
// uniformity expectation from the route table even when the engine declared
// a per-group assignment. A deliberately direction-split deal — all a->b
// traffic on one cable, all b->a on its sibling — is jointly balanced, yet
// the recomputed heuristic flagged it. The lint must consume the engine's
// group metadata instead.
TEST(Lints, Sl403ConsumesTheEngineCablePlan) {
  topo::Topology t;
  const auto s0 = t.add_switch("s0");
  const auto s1 = t.add_switch("s1");
  const topo::WireId w0 = t.connect(s0, 0, s1, 0);
  const topo::WireId w1 = t.connect(s0, 1, s1, 1);
  for (int i = 0; i < 3; ++i) {
    t.connect(t.add_host("a" + std::to_string(i)), 0, s0,
              static_cast<topo::Port>(2 + i));
    t.connect(t.add_host("b" + std::to_string(i)), 0, s1,
              static_cast<topo::Port>(2 + i));
  }
  auto routes = routing::compute_routes(t, routing::EngineKind::kUpDown);
  // Force the direction split: every s0->s1 crossing rides w0, every
  // s1->s0 crossing rides w1.
  for (auto& [key, route] : routes.routes) {
    for (std::size_t h = 0; h < route.wires.size(); ++h) {
      if (route.wires[h] != w0 && route.wires[h] != w1) {
        continue;
      }
      const bool s0_to_s1 = route.nodes[h] == s0;
      route.wires[h] = s0_to_s1 ? w0 : w1;
    }
    routing::recompute_turns(t, route);
  }
  // Declare the split as the engine's plan (9 routes per direction).
  const auto count = [&](topo::WireId w, bool a_to_b) {
    std::size_t n = 0;
    for (const auto& [key, route] : routes.routes) {
      for (std::size_t h = 0; h < route.wires.size(); ++h) {
        const topo::Wire& wire = t.wire(route.wires[h]);
        if (route.wires[h] == w && (wire.a.node == route.nodes[h]) == a_to_b) {
          ++n;
        }
      }
    }
    return n;
  };
  for (const topo::WireId w : {w0, w1}) {
    routes.meta.cable_plan[{w, true}] = count(w, true);
    routes.meta.cable_plan[{w, false}] = count(w, false);
  }

  const auto count_sl403 = [](const analysis::AnalysisResult& r) {
    std::size_t n = 0;
    for (const auto& d : r.report.diagnostics()) {
      if (d.code == "SL403") {
        ++n;
      }
    }
    return n;
  };
  // Plan-aware: jointly balanced, no finding.
  EXPECT_EQ(count_sl403(analysis::analyze(t, routes)), 0u);

  // Fail-before-fix: without the plan the historical per-direction
  // heuristic (the only path the old lint ever took) flags the split.
  auto unplanned = routes;
  unplanned.meta.cable_plan.clear();
  EXPECT_GT(count_sl403(analysis::analyze(t, unplanned)), 0u);

  // And a table that diverges from its declared plan is a finding again.
  auto diverged = routes;
  diverged.meta.cable_plan[{w0, true}] += 3;
  EXPECT_GT(count_sl403(analysis::analyze(t, diverged)), 0u);
}

// Regression: self_heal_routes assumed every remap produced a map the
// engines could accept. A partial remap of a quarantined region (here: the
// severed s3 leaf of the quarantined-region corpus case, with the core —
// master included — missing) used to crash through the orientation's
// connectivity SANMAP_CHECK; it must escalate to a full recompute instead.
TEST(SelfHeal, EscalatesAnUnroutablePartialRemap) {
  const verify::ScenarioCase scenario = verify::read_case_file(
      std::string(SANMAP_CORPUS_DIR) + "/quarantined-region.sancase");
  const simnet::FaultSchedule schedule = scenario.schedule();
  simnet::Network net(scenario.network, scenario.collision);
  net.attach_faults(&schedule);

  // The severed region alone: s3 + its hosts. No master, not even the
  // core — exactly what a region-scoped remap would hand back.
  topo::Topology region = scenario.network;
  for (const topo::NodeId n : scenario.network.nodes()) {
    const std::string& name = scenario.network.name(n);
    if (name != "s3" && name != "h3" && name != "h4") {
      region.remove_node(n);
    }
  }
  // The full recompute: the core without the quarantined region (the
  // fabric as a fresh master session would map it mid-outage).
  topo::Topology core = scenario.network;
  for (const topo::NodeId n : scenario.network.nodes()) {
    const std::string& name = scenario.network.name(n);
    if (name == "s3" || name == "h3" || name == "h4") {
      core.remove_node(n);
    }
  }

  routing::SelfHealConfig config;
  config.master_name = "h0";
  int remaps = 0;
  const auto remap = [&](common::SimTime& clock) {
    clock += common::SimTime::ms(1);
    ++remaps;
    return remaps == 1 ? region : core;
  };
  // Start mid-outage (the uplink dies at 5ms, returns at 500ms).
  const auto result =
      routing::self_heal_routes(net, scenario.network, config, remap,
                                common::SimTime::ms(10));
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.escalated_remaps, 1u);
  EXPECT_EQ(remaps, 2);
  EXPECT_GT(result.total_broken, 0u);
  EXPECT_FALSE(result.map.find_host("h3").has_value());
}

// Regression: the paranoid gate's comparator matched only the aggregate
// verdict (diagnostics + flags + labels), so an incremental pass that
// certified a different route set with the same summary sailed through.
// The certified per-route entries and the certifying root must be diffed
// too.
TEST(ParanoidGate, ComparatorDiffsTheCertifiedRouteSet) {
  const topo::Topology t = topo::now_subcluster(topo::Subcluster::kC, "C");
  const auto routes = routing::compute_routes(t, routing::EngineKind::kUpDown);
  const analysis::AnalysisResult a = analysis::analyze(t, routes);
  ASSERT_TRUE(a.analyzed_routes);
  ASSERT_FALSE(a.legality.routes.empty());

  analysis::AnalysisResult b = a;
  EXPECT_TRUE(service::equivalent_verdicts(a, b));

  b.legality.routes[0].apex_hop += 1;
  EXPECT_FALSE(service::equivalent_verdicts(a, b));

  b = a;
  b.legality.routes[0].legal = false;
  b.legality.routes[0].offending_hop = 0;
  EXPECT_FALSE(service::equivalent_verdicts(a, b));

  b = a;
  b.legality.routes.pop_back();
  EXPECT_FALSE(service::equivalent_verdicts(a, b));

  b = a;
  b.legality.root += 1;
  EXPECT_FALSE(service::equivalent_verdicts(a, b));
}

std::uint64_t fnv1a(const char* data, std::size_t size) {
  std::uint64_t hash = 14695981039346656037ULL;
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= static_cast<std::uint8_t>(data[i]);
    hash *= 1099511628211ULL;
  }
  return hash;
}

TEST(SnapshotCodec, V2CarriesEngineAndOptimizerProvenance) {
  const topo::Topology t = topo::now_subcluster(topo::Subcluster::kC, "C");
  service::SnapshotOptions options;
  options.engine = routing::EngineKind::kDfs;
  options.optimize = true;
  options.source = "test";
  const service::MapSnapshot snapshot =
      service::build_snapshot(t, options, common::SimTime::ms(7));
  EXPECT_TRUE(snapshot.deadlock_free);
  EXPECT_TRUE(snapshot.compliant);
  EXPECT_EQ(snapshot.routes.meta.engine, routing::EngineKind::kDfs);
  EXPECT_TRUE(snapshot.routes.meta.optimized);

  const std::string bytes = service::encode_snapshot(snapshot);
  const service::MapSnapshot decoded = service::decode_snapshot(bytes);
  EXPECT_EQ(decoded.options.engine, routing::EngineKind::kDfs);
  EXPECT_TRUE(decoded.options.optimize);
  EXPECT_EQ(decoded.routes.routes.size(), snapshot.routes.routes.size());
  EXPECT_EQ(decoded.routes.meta.engine, routing::EngineKind::kDfs);
}

TEST(SnapshotCodec, DecodesV1PayloadsWithDefaultProvenance) {
  // A v1 payload is the v2 payload minus the engine (u32) + optimize (u8)
  // bytes after `source`; splice them out of a default-options encoding and
  // rewrite the header so version, size, and checksum agree.
  const topo::Topology t = topo::now_subcluster(topo::Subcluster::kC, "C");
  const service::MapSnapshot snapshot =
      service::build_snapshot(t, {}, common::SimTime::ms(3));
  std::string bytes = service::encode_snapshot(snapshot);

  constexpr std::size_t kHeader = 8 + 4 + 8 + 8;
  const auto u32_at = [&](std::size_t pos) {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(
               static_cast<std::uint8_t>(bytes[pos + static_cast<std::size_t>(
                                                         i)]))
           << (8 * i);
    }
    return v;
  };
  // Walk the payload to the splice point: epoch + created + seed, then two
  // length-prefixed strings.
  std::size_t pos = kHeader + 8 + 8 + 8;
  pos += 4 + u32_at(pos);  // root_name
  pos += 4 + u32_at(pos);  // source
  bytes.erase(pos, 5);

  const auto put_u32 = [&](std::size_t at, std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      bytes[at + static_cast<std::size_t>(i)] =
          static_cast<char>((v >> (8 * i)) & 0xffu);
    }
  };
  const auto put_u64 = [&](std::size_t at, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      bytes[at + static_cast<std::size_t>(i)] =
          static_cast<char>((v >> (8 * i)) & 0xffu);
    }
  };
  put_u32(8, 1);  // version
  put_u64(12, bytes.size() - kHeader);
  put_u64(20, fnv1a(bytes.data() + kHeader, bytes.size() - kHeader));

  const service::MapSnapshot decoded = service::decode_snapshot(bytes);
  EXPECT_EQ(decoded.options.engine, routing::EngineKind::kUpDown);
  EXPECT_FALSE(decoded.options.optimize);
  EXPECT_EQ(decoded.routes.routes.size(), snapshot.routes.routes.size());
}

}  // namespace
