// O(m) regression test: probe cost grows linearly in switch count.
//
// Maps tapered mega-fat-trees at four sizes, fits probes vs m by least
// squares (affine: probes ~ a*m + b), and asserts every point sits within a
// pinned relative residual of the fit. A superlinear regression — an
// accidental O(m^2) scan in the model-graph or probe hot paths — bends the
// curve and blows the residual long before it blows wall clock on CI
// hardware, so this gate is timing-free and deterministic.
//
// The default (tier-1) sizes keep the test under ~500 ms; set
// SANMAP_SCALING_FULL=1 to sweep the paper-scale m in {512, 1k, 2k, 4k}
// (the CI scaling job does).
#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "mapper/berkeley_mapper.hpp"
#include "probe/probe_engine.hpp"
#include "simnet/network.hpp"
#include "topology/generators.hpp"

namespace sanmap {
namespace {

/// Pinned bound on how far any sweep point may sit from the affine fit.
/// Measured residuals are below 1% at both size tiers; 3% leaves headroom
/// for generator boundary effects (top-level width clamps) without letting
/// a quadratic term through — at these sizes even a 1e-3 * m^2 term shifts
/// the largest point by over 10%.
constexpr double kMaxRelativeResidual = 0.03;

struct Point {
  double m = 0;       // switches
  double probes = 0;  // total probes to map
};

Point map_size(int target_switches) {
  topo::MegaFatTreeOptions options;
  options.leaf_switches = std::max(2, target_switches * 8 / 15);
  const topo::Topology network = topo::mega_fat_tree(options);
  const topo::NodeId mapper_host = network.hosts().front();
  simnet::Network net(network);
  probe::ProbeEngine engine(net, mapper_host);
  mapper::MapperConfig config;
  // Analytic depth: overshoot sends no probes (the cap only skips vertices
  // whose probe string exceeds it, and no generated fabric gets near 3W).
  config.search_depth = topo::generous_search_depth(network);
  const mapper::MapResult result = mapper::BerkeleyMapper(engine, config).run();
  EXPECT_EQ(result.map.num_switches(), network.num_switches());
  EXPECT_EQ(result.map.num_wires(), network.num_wires());
  return {static_cast<double>(network.num_switches()),
          static_cast<double>(result.probes.total())};
}

TEST(Scaling, ProbeCountIsLinearInSwitchCount) {
  const bool full = std::getenv("SANMAP_SCALING_FULL") != nullptr;
  // The reduced tier starts at 256 switches: below that the clamped top
  // levels are a visible fraction of the fabric and probes/m has not
  // converged, which bends the affine fit for reasons unrelated to the
  // hot-path complexity this test guards.
  const std::vector<int> sizes = full ? std::vector<int>{512, 1024, 2048, 4096}
                                      : std::vector<int>{256, 512, 768, 1024};

  std::vector<Point> points;
  for (const int m : sizes) {
    points.push_back(map_size(m));
  }

  // Least-squares affine fit probes = a*m + b.
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (const Point& p : points) {
    sx += p.m;
    sy += p.probes;
    sxx += p.m * p.m;
    sxy += p.m * p.probes;
  }
  const double n = static_cast<double>(points.size());
  const double a = (n * sxy - sx * sy) / (n * sxx - sx * sx);
  const double b = (sy - a * sx) / n;
  EXPECT_GT(a, 0.0) << "probe cost must grow with fabric size";

  for (const Point& p : points) {
    const double fit = a * p.m + b;
    const double residual = std::abs(fit - p.probes) / p.probes;
    EXPECT_LT(residual, kMaxRelativeResidual)
        << "m=" << p.m << " probes=" << p.probes << " fit=" << fit
        << " — superlinear bend in probes vs m";
  }
}

}  // namespace
}  // namespace sanmap
