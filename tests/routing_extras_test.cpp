// Tests for the routing extras: congestion analysis, spanning-tree routing
// (the §6 comparison baseline), table distribution, and probe retries.
#include <gtest/gtest.h>

#include "probe/probe_engine.hpp"
#include "routing/congestion.hpp"
#include "routing/deadlock.hpp"
#include "routing/distribute.hpp"
#include "routing/route_health.hpp"
#include "routing/routes.hpp"
#include "routing/tree_routes.hpp"
#include "simnet/fault_schedule.hpp"
#include "simnet/network.hpp"
#include "topology/generators.hpp"

namespace sanmap::routing {
namespace {

using topo::NodeId;
using topo::Topology;

// ------------------------------------------------------------ congestion --

TEST(Congestion, CountsChannelLoads) {
  // Star with 2 leaves, 1 host each: the single inter-switch path carries
  // both directions' routes.
  const Topology t = topo::star(2, 1);
  const auto routes = compute_updown_routes(t);
  const auto stats = channel_load(t, routes);
  EXPECT_EQ(stats.max_channel_load, 1u);  // 2 routes, opposite directions
  EXPECT_GT(stats.used_channels, 0u);
  EXPECT_GT(stats.root_traffic_share, 0.0);
  EXPECT_NE(stats.hottest_wire, topo::kInvalidWire);
}

TEST(Congestion, RootShareReflectsTheKnownUpDownWeakness) {
  // On the torus, UP*/DOWN* concentrates traffic around the BFS root
  // ("increased congestion about the root"); tree routing is even worse.
  const Topology t = topo::torus(4, 4, 1);
  const auto updown = compute_updown_routes(t);
  const auto tree = compute_tree_routes(t);
  const auto updown_stats = channel_load(t, updown);
  const auto tree_stats = channel_load(t, tree);
  EXPECT_GT(updown_stats.root_traffic_share, 0.05);
  EXPECT_GE(tree_stats.max_channel_load, updown_stats.max_channel_load);
}

TEST(Congestion, EmptyRouteSetIsZero) {
  // One switch, one host: no host pairs, no routes.
  Topology t;
  const NodeId s = t.add_switch();
  const NodeId h = t.add_host();
  t.connect(h, 0, s, 0);
  const auto routes = compute_updown_routes(t);
  const auto stats = channel_load(t, routes);
  EXPECT_EQ(stats.max_channel_load, 0u);
  EXPECT_EQ(stats.used_channels, 0u);
}

// ---------------------------------------------------------- tree routing --

TEST(TreeRoutes, AllPairsDeliveredAndDeadlockFree) {
  for (const Topology& t :
       {topo::torus(3, 3, 1), topo::now_subcluster(topo::Subcluster::kC, "C"),
        topo::hypercube(3, 1)}) {
    const auto routes = compute_tree_routes(t);
    const auto hosts = t.hosts();
    EXPECT_EQ(routes.routes.size(), hosts.size() * (hosts.size() - 1));
    EXPECT_TRUE(updown_compliant(routes));
    EXPECT_TRUE(analyze_routes(t, routes).deadlock_free);
    simnet::Network net(t);
    for (const auto& [key, route] : routes.routes) {
      const auto r = net.send(key.first, route.turns);
      ASSERT_TRUE(r.delivered());
      EXPECT_EQ(r.destination, key.second);
    }
  }
}

TEST(TreeRoutes, UsesOnlyTreeEdges) {
  const Topology t = topo::torus(3, 3, 1);
  const auto routes = compute_tree_routes(t);
  std::set<topo::WireId> used;
  for (const auto& [key, route] : routes.routes) {
    used.insert(route.wires.begin(), route.wires.end());
  }
  // A spanning tree over 9 switches + 9 host links = 8 + 9 wires at most.
  EXPECT_LE(used.size(), t.num_switches() - 1 + t.num_hosts());
}

TEST(TreeRoutes, LongerOrEqualPathsThanUpDown) {
  const Topology t = topo::torus(4, 4, 1);
  const auto tree = compute_tree_routes(t);
  const auto updown = compute_updown_routes(t);
  EXPECT_GE(tree.mean_hops(), updown.mean_hops());
}

// ----------------------------------------------------------- distribution --

TEST(Distribute, ShipsEveryTable) {
  const Topology t = topo::now_subcluster(topo::Subcluster::kC, "C");
  const auto routes = compute_updown_routes(t);
  simnet::Network net(t);
  const NodeId master = *t.find_host("C.util");
  const auto result = distribute_tables(net, routes, master);
  EXPECT_TRUE(result.complete);
  EXPECT_EQ(result.messages, t.num_hosts() - 1);
  EXPECT_GT(result.bytes, 0u);
  EXPECT_GT(result.elapsed.to_ns(), 0);
}

TEST(Distribute, FlagsUndeliverableTables) {
  // Compute routes on the full network, then degrade the fabric with heavy
  // traffic: some table messages are destroyed and distribution reports it.
  const Topology t = topo::star(3, 2);
  const auto routes = compute_updown_routes(t);
  simnet::FaultModel faults;
  faults.traffic_intensity = 0.9;
  simnet::Network net(t, simnet::CollisionModel::kCutThrough,
                      simnet::CostModel{}, faults, 5);
  const auto result = distribute_tables(net, routes, t.hosts().front());
  EXPECT_FALSE(result.complete);
}

TEST(Distribute, EmptyRouteSetIsVacuouslyComplete) {
  // A single host has nobody to ship tables to: zero messages, complete by
  // definition, no time spent — in both id-space and map-space form.
  Topology t;
  const NodeId s = t.add_switch();
  const NodeId h = t.add_host("lonely");
  t.connect(h, 0, s, 0);
  const auto routes = compute_updown_routes(t);
  ASSERT_TRUE(routes.routes.empty());

  simnet::Network net(t);
  const auto by_id = distribute_tables(net, routes, h);
  EXPECT_TRUE(by_id.complete);
  EXPECT_EQ(by_id.messages, 0u);
  EXPECT_EQ(by_id.bytes, 0u);
  EXPECT_EQ(by_id.elapsed.to_ns(), 0);

  const auto by_name =
      distribute_tables(net, routes, t, "lonely", common::SimTime{});
  EXPECT_TRUE(by_name.complete);
  EXPECT_EQ(by_name.messages, 0u);
}

TEST(Distribute, HostVanishingMidDistributionIsIncomplete) {
  // The master works through the interfaces sequentially; a host that dies
  // while earlier tables are still being shipped fails its own delivery
  // without poisoning the ones already sent.
  const Topology t = topo::torus(3, 3, 1);
  const auto routes = compute_updown_routes(t);
  const std::string master = t.name(t.hosts().front());

  common::SimTime full_span;
  {
    simnet::Network net(t);
    const auto clean =
        distribute_tables(net, routes, t, master, common::SimTime{});
    ASSERT_TRUE(clean.complete);
    full_span = clean.elapsed;
  }

  // The last host in distribution order receives its table near the end of
  // the run; killing it halfway in guarantees "mid-distribution".
  simnet::FaultSchedule schedule;
  schedule.node_down(t.hosts().back(),
                     common::SimTime::ns(full_span.to_ns() / 2));
  simnet::Network net(t);
  net.attach_faults(&schedule);
  const auto degraded =
      distribute_tables(net, routes, t, master, common::SimTime{});
  EXPECT_FALSE(degraded.complete);
  EXPECT_EQ(degraded.messages, t.num_hosts() - 1);  // every send attempted
  // The failed delivery is charged the timeout, so the degraded run is not
  // cheaper than the clean one.
  EXPECT_GT(degraded.elapsed, full_span);
}

// ----------------------------------------------------------- route health --

TEST(RouteHealth, EmptyRouteSetIsHealthy) {
  Topology t;
  const NodeId s = t.add_switch();
  const NodeId h = t.add_host("lonely");
  t.connect(h, 0, s, 0);
  const auto routes = compute_updown_routes(t);
  simnet::Network net(t);
  const auto report = check_routes(net, routes, t, common::SimTime{});
  EXPECT_TRUE(report.healthy());
  EXPECT_EQ(report.routes_checked, 0u);
  EXPECT_EQ(report.delivery_ratio(), 1.0);
}

TEST(RouteHealth, DeadHostBreaksItsRoutesWithTheRightStatus) {
  // A host death breaks every route touching it: sourced routes die in the
  // NIC (kDropped — the interface is off), inbound routes die on the wire
  // (the paper's NO SUCH WIRE). Routes between surviving hosts still work.
  const Topology t = topo::torus(3, 3, 1);
  const auto routes = compute_updown_routes(t);
  const NodeId victim = t.hosts().back();
  const std::string victim_name = t.name(victim);

  simnet::FaultSchedule schedule;
  schedule.node_down(victim, common::SimTime{});
  simnet::Network net(t);
  net.attach_faults(&schedule);

  const auto report = check_routes(net, routes, t, common::SimTime{});
  EXPECT_FALSE(report.healthy());
  const std::size_t hosts = t.num_hosts();
  EXPECT_EQ(report.routes_checked, hosts * (hosts - 1));
  EXPECT_EQ(report.broken.size(), 2 * (hosts - 1));  // to + from the victim
  for (const BrokenRoute& broken : report.broken) {
    EXPECT_TRUE(broken.src == victim_name || broken.dst == victim_name);
    if (broken.src == victim_name) {
      EXPECT_EQ(broken.status, simnet::DeliveryStatus::kDropped);
    } else {
      EXPECT_NE(broken.status, simnet::DeliveryStatus::kDelivered);
    }
  }
}

// ---------------------------------------------------------------- retries --

TEST(Retries, RecoverProbesLostToTraffic) {
  const Topology t = topo::star(3, 2);
  simnet::FaultModel faults;
  faults.traffic_intensity = 0.25;
  const NodeId mapper_host = t.hosts().front();

  int hit_without = 0;
  int hit_with = 0;
  const int trials = 300;
  {
    simnet::Network net(t, simnet::CollisionModel::kCutThrough,
                        simnet::CostModel{}, faults, 9);
    probe::ProbeEngine engine(net, mapper_host);
    for (int i = 0; i < trials; ++i) {
      hit_without += engine.switch_probe(simnet::Route{-1}) ? 1 : 0;
    }
  }
  {
    simnet::Network net(t, simnet::CollisionModel::kCutThrough,
                        simnet::CostModel{}, faults, 9);
    probe::ProbeOptions options;
    options.retries = 3;
    probe::ProbeEngine engine(net, mapper_host, options);
    for (int i = 0; i < trials; ++i) {
      hit_with += engine.switch_probe(simnet::Route{-1}) ? 1 : 0;
    }
    // Retried attempts are counted as sent probes.
    EXPECT_GT(engine.counters().switch_probes,
              static_cast<std::uint64_t>(trials));
  }
  EXPECT_GT(hit_with, hit_without);
}

TEST(Retries, NoEffectOnAQuiescentNetwork) {
  const Topology t = topo::star(3, 2);
  simnet::Network net(t);
  probe::ProbeOptions options;
  options.retries = 5;
  probe::ProbeEngine engine(net, t.hosts().front(), options);
  EXPECT_TRUE(engine.switch_probe(simnet::Route{-1}));
  EXPECT_EQ(engine.counters().switch_probes, 1u);  // no retry triggered
}

}  // namespace
}  // namespace sanmap::routing
