// Tests for the wormhole network simulator: §2.2 route semantics, the four
// failure modes, both §2.3.1 collision models, cost accounting, and fault
// injection.
#include <gtest/gtest.h>

#include "common/check.hpp"
#include "simnet/network.hpp"
#include "topology/generators.hpp"

namespace sanmap::simnet {
namespace {

using topo::NodeId;
using topo::Topology;

/// h0 -- s0 -- s1 -- h1 with known ports:
///   h0.0 - s0.2 ; s0.5 - s1.1 ; s1.4 - h1.0
struct Line {
  Topology topo;
  NodeId h0, s0, s1, h1;

  Line() {
    h0 = topo.add_host("h0");
    s0 = topo.add_switch();
    s1 = topo.add_switch();
    h1 = topo.add_host("h1");
    topo.connect(h0, 0, s0, 2);
    topo.connect(s0, 5, s1, 1);
    topo.connect(s1, 4, h1, 0);
  }
};

// --------------------------------------------------------------- routes ----

TEST(Route, ToString) {
  EXPECT_EQ(to_string(Route{3, -2, 0}), "+3.-2.+0");
  EXPECT_EQ(to_string(Route{}), "");
}

TEST(Route, Reversed) {
  EXPECT_EQ(reversed(Route{3, -2, 1}), (Route{-1, 2, -3}));
  EXPECT_EQ(reversed(Route{}), Route{});
}

TEST(Route, Extended) {
  EXPECT_EQ(extended(Route{1}, -4), (Route{1, -4}));
}

TEST(Route, LoopbackProbeShape) {
  // a1..ak 0 -ak..-a1 (§2.3).
  EXPECT_EQ(loopback_probe(Route{3, -2}), (Route{3, -2, 0, 2, -3}));
  EXPECT_EQ(loopback_probe(Route{}), (Route{0}));
}

TEST(Route, TurnsInRange) {
  EXPECT_TRUE(turns_in_range(Route{-7, 7, 0}));
  EXPECT_FALSE(turns_in_range(Route{8}));
  EXPECT_FALSE(turns_in_range(Route{-8}));
}

// ----------------------------------------------------------- cost model ----

TEST(CostModel, FlitTimeMatchesLinkRate) {
  const CostModel cost;
  // 1.28 Gb/s = 6.25 ns per byte.
  EXPECT_NEAR(static_cast<double>(cost.flit_time().to_ns()), 6.25, 0.3);
}

TEST(CostModel, PathLatencyScalesWithHops) {
  const CostModel cost;
  const auto l1 = cost.path_latency(1, 0);
  const auto l2 = cost.path_latency(2, 0);
  EXPECT_EQ((l2 - l1).to_ns(), cost.switch_latency.to_ns());
}

// ------------------------------------------------------ route execution ----

TEST(Network, DeliversToHostAlongLine) {
  Line line;
  Network net(line.topo);
  // h0 -> s0 (enter port 2): turn +3 -> port 5 -> s1 (enter port 1):
  // turn +3 -> port 4 -> h1. Route exhausted at h1: delivered.
  const auto r = net.send(line.h0, Route{3, 3});
  EXPECT_TRUE(r.delivered());
  EXPECT_EQ(r.destination, line.h1);
  EXPECT_EQ(r.hops, 3);
}

TEST(Network, EmptyRouteToAdjacentSwitchIsStranded) {
  Line line;
  Network net(line.topo);
  const auto r = net.send(line.h0, Route{});
  EXPECT_EQ(r.status, DeliveryStatus::kStrandedInNetwork);
  EXPECT_EQ(r.destination, line.s0);
  EXPECT_EQ(r.hops, 1);
}

TEST(Network, IllegalTurnKillsMessage) {
  Line line;
  Network net(line.topo);
  // Entering s0 at port 2, turn +6 -> port 8: illegal.
  const auto r = net.send(line.h0, Route{6});
  EXPECT_EQ(r.status, DeliveryStatus::kIllegalTurn);
  EXPECT_EQ(r.destination, line.s0);
  // Turn -3 -> port -1: illegal.
  EXPECT_EQ(net.send(line.h0, Route{-3}).status,
            DeliveryStatus::kIllegalTurn);
}

TEST(Network, NoSuchWireKillsMessage) {
  Line line;
  Network net(line.topo);
  // Entering s0 at port 2, turn +1 -> port 3: legal port, no wire.
  const auto r = net.send(line.h0, Route{1});
  EXPECT_EQ(r.status, DeliveryStatus::kNoSuchWire);
  EXPECT_EQ(r.destination, line.s0);
}

TEST(Network, HitAHostTooSoon) {
  Line line;
  Network net(line.topo);
  // Route +3 +3 +1: the third turn arrives at h1 with a flit remaining.
  const auto r = net.send(line.h0, Route{3, 3, 1});
  EXPECT_EQ(r.status, DeliveryStatus::kHitHostTooSoon);
  EXPECT_EQ(r.destination, line.h1);
}

TEST(Network, StrandedWhenRouteEndsAtSwitch) {
  Line line;
  Network net(line.topo);
  const auto r = net.send(line.h0, Route{3});
  EXPECT_EQ(r.status, DeliveryStatus::kStrandedInNetwork);
  EXPECT_EQ(r.destination, line.s1);
}

TEST(Network, TurnZeroBouncesBackOutTheEntryPort) {
  Line line;
  Network net(line.topo);
  // +3 0 -3: out to s1, bounce (port 1 + 0), come back through s0
  // (enter 5, turn -3 -> port 2), arrive h0: the loopback switch probe.
  const auto r = net.send(line.h0, loopback_probe(Route{3}));
  EXPECT_TRUE(r.delivered());
  EXPECT_EQ(r.destination, line.h0);
  EXPECT_EQ(r.hops, 4);
}

TEST(Network, VisitedTraceRecordsPath) {
  Line line;
  Network net(line.topo);
  std::vector<NodeId> visited;
  net.send(line.h0, Route{3, 3}, &visited);
  EXPECT_EQ(visited,
            (std::vector<NodeId>{line.h0, line.s0, line.s1, line.h1}));
}

TEST(Network, SelfLoopWireTraversal) {
  // Switch with a loopback cable: port 3 <-> port 6 on s.
  Topology t;
  const NodeId h = t.add_host("h");
  const NodeId s = t.add_switch();
  t.connect(h, 0, s, 0);
  t.connect(s, 3, s, 6);
  Network net(t);
  // Enter s at port 0, turn +3 -> port 3 -> re-enter s at port 6,
  // turn -6 -> port 0 -> back at h: delivered to self.
  const auto r = net.send(h, Route{3, -6});
  EXPECT_TRUE(r.delivered());
  EXPECT_EQ(r.destination, h);
  EXPECT_EQ(r.hops, 3);
}

TEST(Network, SendFromSwitchRejected) {
  Line line;
  Network net(line.topo);
  EXPECT_THROW(net.send(line.s0, Route{}), common::CheckFailure);
}

TEST(Network, OutOfRangeTurnRejectedUpFront) {
  Line line;
  Network net(line.topo);
  EXPECT_THROW(net.send(line.h0, Route{9}), common::CheckFailure);
}

// ------------------------------------------------------ collision models ----

/// Ring of 3 switches with two hosts; a route that circles the ring twice
/// reuses every ring channel in the same direction.
struct RingNet {
  Topology topo;
  NodeId h0;

  RingNet() {
    topo = topo::ring(3, 1);
    h0 = topo.hosts().front();
  }
};

/// A route from h0 around the 3-ring once and back to h0's switch, then
/// continuing around again before delivering to h0.
///
/// ring ports: 0 = clockwise, 1 = counter-clockwise, 2 = host.
/// From h0, enter r0 at port 2. Turn -2 -> port 0 -> r1 enter port 1.
/// Turn -1 -> port 0 -> r2 enter port 1. Turn -1 -> port 0 -> r0 enter
/// port 1 (full circle). Repeat: -1 -> r1, -1 -> r2, -1 -> r0, then
/// +1 -> port 2 -> h0.
Route double_loop_route() { return Route{-2, -1, -1, -1, -1, -1, 1}; }

TEST(Collision, CircuitModelFailsOnSameDirectionReuse) {
  RingNet ring;
  Network net(ring.topo, CollisionModel::kCircuit);
  const auto r = net.send(ring.h0, double_loop_route());
  EXPECT_EQ(r.status, DeliveryStatus::kSelfCollision);
}

TEST(Collision, CutThroughWithBufferingSurvivesReuse) {
  RingNet ring;
  // Default cost model: 108 flits of buffering per port absorbs the short
  // worm, so the double loop succeeds.
  Network net(ring.topo, CollisionModel::kCutThrough);
  const auto r = net.send(ring.h0, double_loop_route());
  EXPECT_TRUE(r.delivered());
  EXPECT_EQ(r.destination, ring.h0);
}

TEST(Collision, CutThroughWithoutBufferingDeadlocks) {
  RingNet ring;
  CostModel cost;
  cost.port_buffer_flits = 0;
  cost.payload_flits = 10000;  // a worm far longer than the drain time
  Network net(ring.topo, CollisionModel::kCutThrough, cost);
  const auto r = net.send(ring.h0, double_loop_route());
  EXPECT_EQ(r.status, DeliveryStatus::kSelfCollision);
  // The deadlock costs the hardware break interval.
  EXPECT_GE(r.latency, cost.deadlock_break);
}

TEST(Collision, CutThroughLongGapDrainsNaturally) {
  // With a tiny message and a large ring, the tail drains long before the
  // head returns — no stall even with zero buffering.
  Topology t = topo::ring(8, 1);
  const NodeId h0 = t.hosts().front();
  CostModel cost;
  cost.port_buffer_flits = 0;
  cost.payload_flits = 0;
  Network net(t, CollisionModel::kCutThrough, cost);
  // Around the 8-ring twice: 8 + 8 hops, then into h0.
  Route route{-2};
  for (int i = 0; i < 15; ++i) {
    route.push_back(-1);
  }
  route.push_back(1);
  const auto r = net.send(h0, route);
  EXPECT_TRUE(r.delivered());
}

TEST(Collision, CircuitModelAllowsDisjointPath) {
  RingNet ring;
  Network net(ring.topo, CollisionModel::kCircuit);
  // One loop only: each channel used once.
  const auto r = net.send(ring.h0, Route{-2, -1, -1, 1});
  EXPECT_TRUE(r.delivered());
}

TEST(Collision, OppositeDirectionsAreDistinctChannels) {
  // Loopback probes reuse every wire in the *opposite* direction; that is
  // legal even under the circuit model (full-duplex links).
  Line line;
  Network net(line.topo, CollisionModel::kCircuit);
  const auto r = net.send(line.h0, loopback_probe(Route{3}));
  EXPECT_TRUE(r.delivered());
}

TEST(Collision, CircuitSwitchProbeWithForwardEdgeReuseFails) {
  // A loopback probe whose forward leg reuses a wire in the opposite
  // direction fails under circuit routing: the return leg then needs a
  // channel the circuit already holds. Forward leg: h0 -> r0 -> r1 -> r0
  // (back over the same wire), pivot, return. Under circuit the return
  // re-crosses r0->r1 which is held by the forward leg.
  RingNet ring;
  Network net(ring.topo, CollisionModel::kCircuit);
  // Enter r0 at 2; -2 -> port 0 -> r1 (enter 1); 0 -> back out port 1 ->
  // r0 (enter 0); pivot at... construct explicitly: forward a1=-2, a2=0
  // then pivot 0 then -a2=0, -a1=+2.
  const auto r = net.send(ring.h0, Route{-2, 0, 0, 0, 2});
  EXPECT_EQ(r.status, DeliveryStatus::kSelfCollision);
}

// --------------------------------------------------------------- faults ----

TEST(Faults, TrafficCollisionsOccurAtExpectedRate) {
  Line line;
  FaultModel faults;
  faults.traffic_intensity = 0.3;
  Network net(line.topo, CollisionModel::kCutThrough, CostModel{}, faults,
              /*fault_seed=*/7);
  int delivered = 0;
  const int trials = 2000;
  for (int i = 0; i < trials; ++i) {
    delivered += net.send(line.h0, Route{3, 3}).delivered() ? 1 : 0;
  }
  // Survival probability = (1 - 0.3)^3 = 0.343 over three hops.
  EXPECT_NEAR(static_cast<double>(delivered) / trials, 0.343, 0.05);
  EXPECT_EQ(net.counters().of(DeliveryStatus::kTrafficCollision) +
                static_cast<std::uint64_t>(delivered),
            static_cast<std::uint64_t>(trials));
}

TEST(Faults, DropsAndCorruptionAreEndToEnd) {
  Line line;
  FaultModel faults;
  faults.drop_probability = 0.5;
  Network net(line.topo, CollisionModel::kCutThrough, CostModel{}, faults, 3);
  int dropped = 0;
  for (int i = 0; i < 1000; ++i) {
    const auto r = net.send(line.h0, Route{3, 3});
    EXPECT_TRUE(r.status == DeliveryStatus::kDelivered ||
                r.status == DeliveryStatus::kDropped);
    dropped += r.status == DeliveryStatus::kDropped ? 1 : 0;
  }
  EXPECT_NEAR(dropped / 1000.0, 0.5, 0.06);
}

TEST(Faults, DeterministicForSameSeed) {
  Line line;
  FaultModel faults;
  faults.traffic_intensity = 0.2;
  Network a(line.topo, CollisionModel::kCutThrough, CostModel{}, faults, 42);
  Network b(line.topo, CollisionModel::kCutThrough, CostModel{}, faults, 42);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(a.send(line.h0, Route{3, 3}).status,
              b.send(line.h0, Route{3, 3}).status);
  }
}

TEST(Faults, InvalidProbabilitiesRejected) {
  Line line;
  FaultModel faults;
  faults.traffic_intensity = 1.0;
  EXPECT_THROW(
      Network(line.topo, CollisionModel::kCutThrough, CostModel{}, faults),
      common::CheckFailure);
}

// --------------------------------------------------------------- timing ----

TEST(Timing, LatencyGrowsWithPathLength) {
  Line line;
  Network net(line.topo);
  const auto near = net.send(line.h0, loopback_probe(Route{}));  // 2 hops
  const auto far = net.send(line.h0, loopback_probe(Route{3}));  // 4 hops
  ASSERT_TRUE(near.delivered());
  ASSERT_TRUE(far.delivered());
  EXPECT_LT(near.latency, far.latency);
}

TEST(Timing, SubMillisecondProbeLatency) {
  // Network-level latencies are microseconds; the milliseconds in Figure 7
  // come from host software overheads and timeouts, not the wires.
  Line line;
  Network net(line.topo);
  const auto r = net.send(line.h0, Route{3, 3});
  EXPECT_LT(r.latency, common::SimTime::from_us(100.0));
}

// --------------------------------------------------------------- counters --

TEST(Counters, TrackStatusAndTraversals) {
  Line line;
  Network net(line.topo);
  net.send(line.h0, Route{3, 3});  // delivered, 3 hops
  net.send(line.h0, Route{6});     // illegal turn, 1 hop
  EXPECT_EQ(net.counters().messages, 2u);
  EXPECT_EQ(net.counters().of(DeliveryStatus::kDelivered), 1u);
  EXPECT_EQ(net.counters().of(DeliveryStatus::kIllegalTurn), 1u);
  EXPECT_EQ(net.counters().wire_traversals, 4u);
  net.reset_counters();
  EXPECT_EQ(net.counters().messages, 0u);
}

TEST(Counters, StatusNames) {
  EXPECT_STREQ(to_string(DeliveryStatus::kDelivered), "delivered");
  EXPECT_STREQ(to_string(DeliveryStatus::kStrandedInNetwork),
               "stranded-in-network");
  EXPECT_STREQ(to_string(CollisionModel::kCircuit), "circuit");
  EXPECT_STREQ(to_string(CollisionModel::kCutThrough), "cut-through");
}

}  // namespace
}  // namespace sanmap::simnet
