// ChurnGenerator: the spec grammar, compilation determinism, immunity, and
// the bounded-burst guarantee (a flapburst clause must *end*, unlike a raw
// FaultSchedule flap).
#include <gtest/gtest.h>

#include <stdexcept>

#include "common/sim_time.hpp"
#include "simnet/churn.hpp"
#include "simnet/fault_schedule.hpp"
#include "topology/generators.hpp"

namespace sanmap {
namespace {

using common::SimTime;
using simnet::ChurnClause;
using simnet::ChurnGenerator;
using simnet::ChurnSpec;
using simnet::FaultSchedule;
using topo::NodeId;
using topo::Topology;

// ---------------------------------------------------------------- grammar --

TEST(ChurnSpec, ParsesEveryClauseKindAndRoundTrips) {
  const std::string text =
      "rolling(start=100,every=200,down=50,count=8);"
      "outage(at=500,switches=3,down=100);"
      "flapburst(at=300,span=200,period=8,duty=0.25,wires=2);"
      "hostchurn(start=400,every=150,down=75,count=6)";
  const ChurnSpec spec = simnet::parse_churn_spec(text);
  ASSERT_EQ(spec.clauses.size(), 4u);
  EXPECT_EQ(spec.clauses[0].kind, ChurnClause::Kind::kRolling);
  EXPECT_EQ(spec.clauses[0].at, SimTime::ms(100));
  EXPECT_EQ(spec.clauses[0].every, SimTime::ms(200));
  EXPECT_EQ(spec.clauses[0].down, SimTime::ms(50));
  EXPECT_EQ(spec.clauses[0].count, 8);
  EXPECT_EQ(spec.clauses[1].kind, ChurnClause::Kind::kOutage);
  EXPECT_EQ(spec.clauses[1].count, 3);
  EXPECT_EQ(spec.clauses[2].kind, ChurnClause::Kind::kFlapBurst);
  EXPECT_DOUBLE_EQ(spec.clauses[2].duty, 0.25);
  EXPECT_EQ(spec.clauses[3].kind, ChurnClause::Kind::kHostChurn);

  // The canonical form parses back to the same clauses.
  const ChurnSpec again = simnet::parse_churn_spec(to_string(spec));
  ASSERT_EQ(again.clauses.size(), spec.clauses.size());
  for (std::size_t i = 0; i < spec.clauses.size(); ++i) {
    EXPECT_EQ(again.clauses[i].kind, spec.clauses[i].kind) << i;
    EXPECT_EQ(again.clauses[i].at, spec.clauses[i].at) << i;
    EXPECT_EQ(again.clauses[i].every, spec.clauses[i].every) << i;
    EXPECT_EQ(again.clauses[i].down, spec.clauses[i].down) << i;
    EXPECT_EQ(again.clauses[i].period, spec.clauses[i].period) << i;
    EXPECT_EQ(again.clauses[i].span, spec.clauses[i].span) << i;
    EXPECT_DOUBLE_EQ(again.clauses[i].duty, spec.clauses[i].duty) << i;
    EXPECT_EQ(again.clauses[i].count, spec.clauses[i].count) << i;
  }
}

TEST(ChurnSpec, DurationUnitsDefaultToMilliseconds) {
  const ChurnSpec spec = simnet::parse_churn_spec(
      "flapburst(at=2s,span=500ms,period=750us,duty=0.5,wires=1)");
  ASSERT_EQ(spec.clauses.size(), 1u);
  EXPECT_EQ(spec.clauses[0].at, SimTime::seconds(2));
  EXPECT_EQ(spec.clauses[0].span, SimTime::ms(500));
  EXPECT_EQ(spec.clauses[0].period, SimTime::us(750));
}

TEST(ChurnSpec, RejectsMalformedClauses) {
  EXPECT_THROW(simnet::parse_churn_spec("meteor(at=1)"), std::runtime_error);
  EXPECT_THROW(simnet::parse_churn_spec("rolling(start=1wk)"),
               std::runtime_error);  // unknown duration unit
  EXPECT_THROW(simnet::parse_churn_spec("rolling(orbit=3)"),
               std::runtime_error);  // unknown key
  EXPECT_THROW(
      simnet::parse_churn_spec("rolling(start=1,every=0,down=1,count=1)"),
      std::runtime_error);  // wave spacing must be positive
  EXPECT_THROW(
      simnet::parse_churn_spec(
          "flapburst(at=1,span=5,period=10,duty=0.5,wires=1)"),
      std::runtime_error);  // span shorter than one period
  EXPECT_THROW(
      simnet::parse_churn_spec(
          "flapburst(at=1,span=50,period=10,duty=1.5,wires=1)"),
      std::runtime_error);  // duty outside [0, 1]
  EXPECT_THROW(simnet::parse_churn_spec("outage(at=1,switches=0,down=1)"),
               std::runtime_error);  // zero targets
}

TEST(ChurnSpec, HorizonCoversTheLastScheduledTransition) {
  const ChurnSpec spec = simnet::parse_churn_spec(
      "rolling(start=100,every=200,down=50,count=3);"
      "outage(at=900,switches=1,down=300)");
  // rolling: last wave at 100 + 2*200 = 500, revived at 550;
  // outage: revived at 1200 — the horizon.
  EXPECT_EQ(spec.horizon(8), SimTime::ms(1200));
}

TEST(ChurnSpec, ShiftedMovesEveryClauseStart) {
  const ChurnSpec spec = simnet::parse_churn_spec(
      "rolling(start=100,every=200,down=50,count=2)");
  const ChurnSpec moved = spec.shifted(SimTime::seconds(3));
  ASSERT_EQ(moved.clauses.size(), 1u);
  EXPECT_EQ(moved.clauses[0].at, SimTime::ms(3100));
  EXPECT_EQ(moved.clauses[0].every, spec.clauses[0].every);
  EXPECT_EQ(moved.horizon(4) - spec.horizon(4), SimTime::seconds(3));
}

// ------------------------------------------------------------ compilation --

/// Samples the full liveness state (every node, every wire) at `at`.
std::string state_at(const Topology& t, const FaultSchedule& schedule,
                     SimTime at) {
  std::string state;
  for (const NodeId n : t.nodes()) {
    state.push_back(schedule.node_up_at(n, at) ? 'u' : 'd');
  }
  for (const topo::WireId w : t.wires()) {
    state.push_back(schedule.wire_up_at(t, w, at) ? 'U' : 'D');
  }
  return state;
}

TEST(ChurnGenerator, CompilationIsDeterministicPerSeed) {
  const Topology t = topo::mesh(3, 3, 1);
  const ChurnSpec spec = simnet::parse_churn_spec(
      "rolling(start=10,every=20,down=5,count=6);"
      "hostchurn(start=15,every=20,down=5,count=4)");
  const FaultSchedule a = ChurnGenerator(spec, 42).compile(t);
  const FaultSchedule b = ChurnGenerator(spec, 42).compile(t);
  EXPECT_EQ(a.events(), b.events());
  for (int ms = 0; ms <= 150; ms += 1) {
    EXPECT_EQ(state_at(t, a, SimTime::ms(ms)), state_at(t, b, SimTime::ms(ms)))
        << "diverged at " << ms << "ms";
  }
}

TEST(ChurnGenerator, ImmuneNodesAndTheirAccessSwitchesAreNeverTouched) {
  const Topology t = topo::mesh(3, 3, 1);
  const NodeId master = t.hosts().front();
  const NodeId access = t.neighbors(master).front().node;
  // A full cycle over every eligible switch and host, plus an outage: with
  // the master immune, its access switch and the master itself must stay up
  // through the whole horizon.
  const ChurnSpec spec = simnet::parse_churn_spec(
      "rolling(start=10,every=20,down=1000,count=0);"
      "hostchurn(start=10,every=20,down=1000,count=0);"
      "outage(at=15,switches=2,down=1000)");
  const FaultSchedule schedule =
      ChurnGenerator(spec, 7).compile(t, {master});
  for (int ms = 0; ms <= 1500; ms += 5) {
    EXPECT_TRUE(schedule.node_up_at(master, SimTime::ms(ms))) << ms;
    EXPECT_TRUE(schedule.node_up_at(access, SimTime::ms(ms))) << ms;
  }
  // Everything else was hit at least once: every wave starts by
  // 10 + 7*20 = 150ms, so a sweep of the first 400ms sees each target down.
  const auto went_down = [&](NodeId n) {
    for (int ms = 0; ms <= 400; ++ms) {
      if (!schedule.node_up_at(n, SimTime::ms(ms))) {
        return true;
      }
    }
    return false;
  };
  for (const NodeId s : t.switches()) {
    if (s != access) {
      EXPECT_TRUE(went_down(s)) << "switch " << s << " was never maintained";
    }
  }
  for (const NodeId h : t.hosts()) {
    if (h != master) {
      EXPECT_TRUE(went_down(h)) << "host " << h << " never churned";
    }
  }
}

TEST(ChurnGenerator, RollingCountZeroCyclesEveryEligibleSwitchOnce) {
  const Topology t = topo::mesh(2, 2, 1);
  // No immune set: all 4 switches are eligible. One wave each, down+up.
  const ChurnSpec spec = simnet::parse_churn_spec(
      "rolling(start=10,every=20,down=5,count=0)");
  const FaultSchedule schedule = ChurnGenerator(spec, 3).compile(t);
  EXPECT_EQ(schedule.events(), 2u * 4u);
  for (const NodeId s : t.switches()) {
    bool went_down = false;
    for (int ms = 0; ms <= 100 && !went_down; ++ms) {
      went_down = !schedule.node_up_at(s, SimTime::ms(ms));
    }
    EXPECT_TRUE(went_down) << "switch " << s << " was never maintained";
    EXPECT_TRUE(schedule.node_up_at(s, SimTime::ms(200))) << "switch " << s;
  }
}

TEST(ChurnGenerator, FlapBurstEndsUnlikeARawFlap) {
  const Topology t = topo::mesh(3, 3, 1);
  const ChurnSpec spec = simnet::parse_churn_spec(
      "flapburst(at=100,span=100,period=10,duty=0.5,wires=2)");
  const FaultSchedule schedule = ChurnGenerator(spec, 11).compile(t);
  EXPECT_FALSE(schedule.empty());

  bool saw_down = false;
  for (int ms = 100; ms < 200 && !saw_down; ++ms) {
    for (const topo::WireId w : t.wires()) {
      if (!schedule.wire_up_at(t, w, SimTime::ms(ms))) {
        saw_down = true;
        break;
      }
    }
  }
  EXPECT_TRUE(saw_down) << "the burst never took a wire down";

  // Past at+span the burst is over — forever. A FaultSchedule flap would
  // still be cycling at any of these instants.
  for (const int ms : {200, 205, 333, 1000, 100000}) {
    for (const topo::WireId w : t.wires()) {
      EXPECT_TRUE(schedule.wire_up_at(t, w, SimTime::ms(ms)))
          << "wire " << w << " still flapping at " << ms << "ms";
    }
  }
}

TEST(ChurnGenerator, DutyEdgesAreAlwaysDownAndAlwaysUp) {
  const Topology t = topo::mesh(3, 3, 1);
  // duty=1: the wire is up for the full period — no transitions at all.
  const FaultSchedule up = ChurnGenerator(
      simnet::parse_churn_spec(
          "flapburst(at=50,span=100,period=10,duty=1.0,wires=3)"),
      5).compile(t);
  EXPECT_TRUE(up.empty());

  // duty=0: the chosen wires are down for the whole span, up after it.
  const FaultSchedule down = ChurnGenerator(
      simnet::parse_churn_spec(
          "flapburst(at=50,span=100,period=10,duty=0.0,wires=1)"),
      5).compile(t);
  int down_wires = 0;
  for (const topo::WireId w : t.wires()) {
    bool all_down = true;
    for (int ms = 50; ms < 150; ms += 3) {
      all_down = all_down && !down.wire_up_at(t, w, SimTime::ms(ms));
    }
    down_wires += all_down ? 1 : 0;
    EXPECT_TRUE(down.wire_up_at(t, w, SimTime::ms(151))) << w;
  }
  EXPECT_EQ(down_wires, 1);
}

TEST(ChurnGenerator, PermanentOutageNeverRevives) {
  const Topology t = topo::mesh(3, 3, 1);
  const FaultSchedule schedule = ChurnGenerator(
      simnet::parse_churn_spec("outage(at=100,switches=2,down=0)"),
      9).compile(t);
  int dead = 0;
  for (const NodeId s : t.switches()) {
    if (!schedule.node_up_at(s, SimTime::seconds(1000))) {
      ++dead;
    }
  }
  EXPECT_EQ(dead, 2);
}

TEST(ChurnGenerator, ThrowsWhenNoTargetIsEligible) {
  // One switch, one host, and the host is immune — the switch is its access
  // switch, so a switch-targeting clause has nothing to hit.
  Topology t;
  const NodeId s = t.add_switch();
  const NodeId h = t.add_host("h");
  t.connect(h, 0, s, 0);
  const ChurnSpec spec =
      simnet::parse_churn_spec("rolling(start=1,every=2,down=1,count=1)");
  EXPECT_THROW(ChurnGenerator(spec, 1).compile(t, {h}), std::runtime_error);
}

}  // namespace
}  // namespace sanmap
