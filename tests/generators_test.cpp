// Tests for topology generators, including the exact Figure 3 inventory of
// the NOW subclusters.
#include <gtest/gtest.h>

#include <set>

#include "common/rng.hpp"
#include "topology/algorithms.hpp"
#include "topology/generators.hpp"

namespace sanmap::topo {
namespace {

struct SubclusterCase {
  Subcluster which;
  const char* name;
};

class NowSubclusterTest : public ::testing::TestWithParam<SubclusterCase> {};

TEST_P(NowSubclusterTest, MatchesFigure3Inventory) {
  const auto& param = GetParam();
  const Topology t = now_subcluster(param.which, param.name);
  const Inventory inv = now_inventory(param.which);
  EXPECT_EQ(t.num_hosts(), inv.interfaces) << "interfaces";
  EXPECT_EQ(t.num_switches(), inv.switches) << "switches";
  EXPECT_EQ(t.num_wires(), inv.links) << "links";
}

TEST_P(NowSubclusterTest, IsConnected) {
  EXPECT_TRUE(connected(now_subcluster(GetParam().which, GetParam().name)));
}

TEST_P(NowSubclusterTest, EveryHostHasExactlyOneLink) {
  const Topology t = now_subcluster(GetParam().which, GetParam().name);
  for (const NodeId h : t.hosts()) {
    EXPECT_EQ(t.degree(h), 1) << t.name(h);
    const auto far = t.peer(h, 0);
    ASSERT_TRUE(far.has_value());
    EXPECT_TRUE(t.is_switch(far->node));
  }
}

TEST_P(NowSubclusterTest, NoSwitchExceedsPortBudget) {
  const Topology t = now_subcluster(GetParam().which, GetParam().name);
  for (const NodeId s : t.switches()) {
    EXPECT_LE(t.degree(s), 8);
  }
}

TEST_P(NowSubclusterTest, CoreIsWholeNetwork) {
  // The NOW has no host-free regions behind switch-bridges.
  const Topology t = now_subcluster(GetParam().which, GetParam().name);
  const auto f = separated_set(t);
  EXPECT_TRUE(std::none_of(f.begin(), f.end(), [](bool b) { return b; }));
}

TEST_P(NowSubclusterTest, HasUtilityHostOnRoot) {
  const Topology t = now_subcluster(GetParam().which, GetParam().name);
  const auto util = t.find_host(std::string(GetParam().name) + ".util");
  ASSERT_TRUE(util.has_value());
  const auto root = t.peer(*util, 0);
  ASSERT_TRUE(root.has_value());
  EXPECT_NE(t.name(root->node).find("root"), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(
    AllSubclusters, NowSubclusterTest,
    ::testing::Values(SubclusterCase{Subcluster::kA, "A"},
                      SubclusterCase{Subcluster::kB, "B"},
                      SubclusterCase{Subcluster::kC, "C"}),
    [](const auto& param_info) { return param_info.param.name; });

TEST(NowCluster, FullSystemHeadlineCounts) {
  // Abstract: "100 nodes, 40 switches, and 193 links". Our composition keeps
  // each subcluster at its published link count and adds 4 explicit trunk
  // cables (the paper attributed trunks to subcluster budgets; see
  // generators.hpp).
  const Topology t = now_cluster();
  EXPECT_EQ(t.num_hosts(), 100u);
  EXPECT_EQ(t.num_switches(), 40u);
  EXPECT_EQ(t.num_wires(), 193u + 4u);
  EXPECT_TRUE(connected(t));
}

TEST(NowCluster, SubclusterCIrregularity) {
  // "The middle switch in the first level only has two links, instead of
  // three, to other switches."
  const Topology t = now_subcluster(Subcluster::kC, "C");
  int two_uplink_leaves = 0;
  for (const NodeId s : t.switches()) {
    if (t.name(s).find("leaf") == std::string::npos) {
      continue;
    }
    int uplinks = 0;
    for (const PortRef& nb : t.neighbors(s)) {
      if (t.is_switch(nb.node)) {
        ++uplinks;
      }
    }
    if (uplinks == 2) {
      ++two_uplink_leaves;
    } else {
      EXPECT_EQ(uplinks, 3);
    }
  }
  EXPECT_EQ(two_uplink_leaves, 1);
}

TEST(NowCluster, GrowthSequence) {
  const Topology c = now_system(NowSystem::kC);
  const Topology ca = now_system(NowSystem::kCA);
  const Topology cab = now_system(NowSystem::kCAB);
  EXPECT_EQ(c.num_hosts(), 36u);
  EXPECT_EQ(ca.num_hosts(), 70u);
  EXPECT_EQ(cab.num_hosts(), 100u);
  EXPECT_EQ(c.num_switches(), 13u);
  EXPECT_EQ(ca.num_switches(), 26u);
  EXPECT_EQ(cab.num_switches(), 40u);
  EXPECT_TRUE(connected(ca));
  EXPECT_TRUE(connected(cab));
}

TEST(NowCluster, ExtraRootsIncreaseSwitchCount) {
  NowOptions options;
  options.extra_roots = 2;
  const Topology t = now_cluster(options);
  EXPECT_EQ(t.num_switches(), 42u);
  EXPECT_TRUE(connected(t));
}

TEST(NowCluster, SystemNames) {
  EXPECT_STREQ(to_string(NowSystem::kC), "C");
  EXPECT_STREQ(to_string(NowSystem::kCA), "C+A");
  EXPECT_STREQ(to_string(NowSystem::kCAB), "C+A+B");
}

TEST(Hypercube, StructureAndDegrees) {
  const Topology t = hypercube(3, 2);
  EXPECT_EQ(t.num_switches(), 8u);
  EXPECT_EQ(t.num_hosts(), 16u);
  EXPECT_EQ(t.num_wires(), 12u + 16u);
  EXPECT_TRUE(connected(t));
  for (const NodeId s : t.switches()) {
    EXPECT_EQ(t.degree(s), 5);  // 3 cube links + 2 hosts
  }
  EXPECT_EQ(diameter(t), 3 + 2);  // cube diameter + two host hops
}

TEST(Hypercube, RejectsOverSubscription) {
  EXPECT_THROW(hypercube(4, 5), common::CheckFailure);
  EXPECT_THROW(hypercube(8, 0), common::CheckFailure);
}

TEST(Mesh, CountsAndDiameter) {
  const Topology t = mesh(4, 3, 1);
  EXPECT_EQ(t.num_switches(), 12u);
  EXPECT_EQ(t.num_hosts(), 12u);
  // Grid links: 3*3 + 4*2 = 17.
  EXPECT_EQ(t.num_wires(), 17u + 12u);
  EXPECT_EQ(diameter(t), (3 + 2) + 2);
}

TEST(Torus, WrapLinksPresent) {
  const Topology t = torus(4, 4, 0);
  EXPECT_EQ(t.num_wires(), 32u);  // 2 links per switch-pair dimension
  EXPECT_EQ(diameter(t), 4);      // 2 + 2
  EXPECT_TRUE(bridges(t).empty());
}

TEST(Torus, RejectsDegenerateWrap) {
  EXPECT_THROW(torus(2, 4, 0), common::CheckFailure);
}

TEST(Ring, CountsAndNoBridges) {
  const Topology t = ring(6, 2);
  EXPECT_EQ(t.num_switches(), 6u);
  EXPECT_EQ(t.num_hosts(), 12u);
  const auto b = bridges(t);
  // Only host links are bridges.
  EXPECT_EQ(b.size(), 12u);
}

TEST(Star, Structure) {
  const Topology t = star(5, 3);
  EXPECT_EQ(t.num_switches(), 6u);
  EXPECT_EQ(t.num_hosts(), 15u);
  EXPECT_TRUE(connected(t));
}

TEST(FatTree, DefaultBuilds) {
  const Topology t = fat_tree({});
  EXPECT_EQ(t.num_switches(), 8u + 4u + 4u);
  EXPECT_EQ(t.num_hosts(), 32u);
  EXPECT_TRUE(connected(t));
}

TEST(MultiPod, DefaultBuilds) {
  const Topology t = multi_pod({});
  // 3 pods x (2 roots + 3 leaves) + 2 spines.
  EXPECT_EQ(t.num_switches(), 3u * 5u + 2u);
  EXPECT_EQ(t.num_hosts(), 3u * 3u * 2u);
  EXPECT_TRUE(connected(t));
}

TEST(MultiPod, SpineIsHostFreeAndSurvivesCoring) {
  const Topology t = multi_pod({});
  for (const topo::NodeId s : t.switches()) {
    if (t.name(s).rfind("spine", 0) == 0) {
      for (const topo::PortRef& ref : t.neighbors(s)) {
        EXPECT_TRUE(t.is_switch(ref.node));
      }
    }
  }
  // Every pod root reaches every spine, so the spine layer is multiply
  // connected and stays in the mappable core.
  EXPECT_EQ(core(t).num_switches(), t.num_switches());
}

TEST(MultiPod, EightPodsFitThePortBudget) {
  MultiPodOptions options;
  options.pods = 8;
  options.pod_roots = 1;
  options.leaf_switches_per_pod = 4;
  options.uplinks = 1;
  const Topology t = multi_pod(options);
  EXPECT_TRUE(connected(t));
  EXPECT_EQ(t.num_switches(), 8u * 5u + 2u);
}

TEST(MultiPod, RejectsSpinePortExhaustion) {
  MultiPodOptions options;
  options.pods = 5;
  options.pod_roots = 2;  // 10 spine wires > 8 ports
  EXPECT_THROW(multi_pod(options), common::CheckFailure);
}

TEST(MultiPod, SpineUplinksScalesPastEightPodRoots) {
  // The legacy dense wiring caps pods * pod_roots at 8; windowed spine
  // uplinks lift that while keeping the host-free spine layer in the core.
  MultiPodOptions options;
  options.pods = 24;
  options.pod_roots = 2;
  options.spines = 16;
  options.spine_uplinks = 2;
  const Topology t = multi_pod(options);
  EXPECT_EQ(t.num_switches(), 24u * 5u + 16u);
  EXPECT_EQ(t.num_hosts(), 24u * 3u * 2u);
  EXPECT_TRUE(connected(t));
  for (const NodeId s : t.switches()) {
    EXPECT_LE(t.degree(s), 8) << t.name(s);
  }
  // Every spine keeps >= 2 root links, so coring sheds nothing.
  EXPECT_EQ(core(t).num_switches(), t.num_switches());
}

TEST(MultiPod, RejectsBadSpineUplinkConfigs) {
  MultiPodOptions one_link;
  one_link.spines = 4;
  one_link.spine_uplinks = 1;  // singly-attached spines would be cored away
  EXPECT_THROW(multi_pod(one_link), common::CheckFailure);

  MultiPodOptions starved;
  starved.pods = 2;
  starved.pod_roots = 1;
  starved.spines = 8;  // 2 * 2 root links < 2 * 8 spine ports needed
  starved.spine_uplinks = 2;
  EXPECT_THROW(multi_pod(starved), common::CheckFailure);
}

TEST(MegaFatTree, ExactCountsAndBudgets) {
  MegaFatTreeOptions options;
  options.levels = 4;
  options.leaf_switches = 16;
  options.taper = 2;
  options.hosts_per_leaf = 2;
  options.uplinks = 2;
  const Topology t = mega_fat_tree(options);
  // Tapered widths: 16, 8, 4, 2.
  EXPECT_EQ(t.num_switches(), 16u + 8u + 4u + 2u);
  EXPECT_EQ(t.num_hosts(), 16u * 2u);  // exact host count
  // Wires: hosts + 2 uplinks per non-top switch.
  EXPECT_EQ(t.num_wires(), 32u + (16u + 8u + 4u) * 2u);
  EXPECT_TRUE(connected(t));
  for (const NodeId s : t.switches()) {
    EXPECT_LE(t.degree(s), 8) << t.name(s);
  }
  // Host-free upper levels are multiply connected: nothing cored away.
  EXPECT_EQ(core(t).num_switches(), t.num_switches());
}

TEST(MegaFatTree, ThousandSwitchFabricConnected) {
  MegaFatTreeOptions options;
  options.leaf_switches = 600;  // widths 600, 300, 150, 75 -> 1125 switches
  const Topology t = mega_fat_tree(options);
  EXPECT_EQ(t.num_switches(), 600u + 300u + 150u + 75u);
  EXPECT_EQ(t.num_hosts(), 1200u);
  EXPECT_TRUE(connected(t));
}

TEST(MegaFatTree, RejectsPortOverSubscription) {
  MegaFatTreeOptions options;
  options.taper = 3;
  options.uplinks = 3;  // (taper + 1) * uplinks = 12 > 8 mid-level ports
  EXPECT_THROW(mega_fat_tree(options), common::CheckFailure);

  MegaFatTreeOptions host_heavy;
  host_heavy.hosts_per_leaf = 7;  // 7 hosts + 2 uplinks > 8 leaf ports
  EXPECT_THROW(mega_fat_tree(host_heavy), common::CheckFailure);
}

TEST(Dragonflyish, ConnectedWithExactHostCounts) {
  DragonflyishOptions options;
  common::Rng rng(11);
  const Topology t = dragonfly_ish(options, rng);
  EXPECT_EQ(t.num_switches(),
            static_cast<std::size_t>(options.groups *
                                     options.switches_per_group));
  EXPECT_EQ(t.num_hosts(), static_cast<std::size_t>(options.groups *
                                                    options.hosts_per_group));
  EXPECT_TRUE(connected(t));
  for (const NodeId s : t.switches()) {
    EXPECT_LE(t.degree(s), 8) << t.name(s);
  }
}

TEST(Dragonflyish, SameSeedIdenticalTopology) {
  DragonflyishOptions options;
  common::Rng rng1(42);
  common::Rng rng2(42);
  const Topology a = dragonfly_ish(options, rng1);
  const Topology b = dragonfly_ish(options, rng2);
  EXPECT_TRUE(a.structurally_equal(b));
}

TEST(Dragonflyish, DistinctSeedsGiveNonIsomorphicCores) {
  DragonflyishOptions options;
  common::Rng rng1(1);
  common::Rng rng2(2);
  const Topology a = dragonfly_ish(options, rng1);
  const Topology b = dragonfly_ish(options, rng2);
  // The seeded chords land on different switches, so even the mappable
  // cores differ structurally.
  EXPECT_FALSE(core(a).structurally_equal(core(b)));
}

TEST(Dragonflyish, SkeletonConnectedEvenWithoutExtras) {
  DragonflyishOptions options;
  options.local_chords = 0;
  options.global_extras = 0;
  common::Rng rng(3);
  const Topology t = dragonfly_ish(options, rng);
  EXPECT_TRUE(connected(t));
  EXPECT_EQ(core(t).num_switches(), t.num_switches());
}

TEST(GenerousSearchDepth, DominatesExactDepthOnSmallFabrics) {
  // The analytic 3W + 3 bound must never under-shoot the exact
  // min-cost-flow depth; overshoot is free (no probe is sent because the
  // cap is generous).
  MegaFatTreeOptions options;
  options.leaf_switches = 8;
  const Topology fabric = mega_fat_tree(options);
  const Topology c = core(fabric);
  EXPECT_GE(generous_search_depth(c), search_depth(c, *c.hosts().begin()));

  DragonflyishOptions dragonfly;
  dragonfly.groups = 4;
  dragonfly.switches_per_group = 4;
  common::Rng rng(7);
  const Topology d = core(dragonfly_ish(dragonfly, rng));
  EXPECT_GE(generous_search_depth(d), search_depth(d, *d.hosts().begin()));
}

TEST(RandomIrregular, ConnectedAndDeterministic) {
  common::Rng rng1(99);
  common::Rng rng2(99);
  const Topology a = random_irregular(10, 12, 5, rng1);
  const Topology b = random_irregular(10, 12, 5, rng2);
  EXPECT_TRUE(connected(a));
  EXPECT_EQ(a.num_switches(), 10u);
  EXPECT_EQ(a.num_hosts(), 12u);
  EXPECT_GE(a.num_wires(), 10u + 12u + 4u);  // tree + hosts + most extras
  EXPECT_TRUE(a.structurally_equal(b));  // same seed, same network
}

TEST(RandomIrregular, DifferentSeedsDiffer) {
  common::Rng rng1(1);
  common::Rng rng2(2);
  const Topology a = random_irregular(10, 12, 5, rng1);
  const Topology b = random_irregular(10, 12, 5, rng2);
  EXPECT_FALSE(a.structurally_equal(b));
}

TEST(RandomIrregular, SingleSwitchManyHosts) {
  common::Rng rng(5);
  const Topology t = random_irregular(1, 8, 0, rng);
  EXPECT_EQ(t.num_wires(), 8u);
}

TEST(WithSwitchTail, ProducesSwitchBridge) {
  common::Rng rng(17);
  const Topology t = with_switch_tail(6, 6, 2, rng);
  EXPECT_GE(switch_bridges(t).size(), 2u);
  EXPECT_TRUE(connected(t));
}

}  // namespace
}  // namespace sanmap::topo
