// Unit tests for the Topology multigraph itself: construction invariants,
// port bookkeeping, dynamic reconfiguration (tombstones), compaction.
#include <gtest/gtest.h>

#include "common/check.hpp"
#include "topology/topology.hpp"

namespace sanmap::topo {
namespace {

using sanmap::common::CheckFailure;

TEST(Topology, EmptyTopology) {
  Topology t;
  EXPECT_EQ(t.num_nodes(), 0u);
  EXPECT_EQ(t.num_wires(), 0u);
  EXPECT_TRUE(t.nodes().empty());
}

TEST(Topology, AddHostAndSwitchKinds) {
  Topology t;
  const NodeId h = t.add_host("alpha");
  const NodeId s = t.add_switch();
  EXPECT_TRUE(t.is_host(h));
  EXPECT_TRUE(t.is_switch(s));
  EXPECT_EQ(t.kind(h), NodeKind::kHost);
  EXPECT_EQ(t.kind(s), NodeKind::kSwitch);
  EXPECT_EQ(t.num_hosts(), 1u);
  EXPECT_EQ(t.num_switches(), 1u);
}

TEST(Topology, PortCounts) {
  Topology t;
  EXPECT_EQ(t.port_count(t.add_host()), kHostPorts);
  EXPECT_EQ(t.port_count(t.add_switch()), kSwitchPorts);
}

TEST(Topology, AutoNamesAreUnique) {
  Topology t;
  const NodeId a = t.add_host();
  const NodeId b = t.add_host();
  EXPECT_NE(t.name(a), t.name(b));
}

TEST(Topology, DuplicateHostNameRejected) {
  Topology t;
  t.add_host("x");
  EXPECT_THROW(t.add_host("x"), CheckFailure);
}

TEST(Topology, FindHostByName) {
  Topology t;
  const NodeId h = t.add_host("needle");
  t.add_host("other");
  EXPECT_EQ(t.find_host("needle"), h);
  EXPECT_EQ(t.find_host("missing"), std::nullopt);
}

TEST(Topology, ConnectWiresBothEnds) {
  Topology t;
  const NodeId h = t.add_host();
  const NodeId s = t.add_switch();
  const WireId w = t.connect(h, 0, s, 3);
  EXPECT_EQ(t.num_wires(), 1u);
  EXPECT_EQ(t.wire_at(h, 0), w);
  EXPECT_EQ(t.wire_at(s, 3), w);
  EXPECT_EQ(t.peer(h, 0), (PortRef{s, 3}));
  EXPECT_EQ(t.peer(s, 3), (PortRef{h, 0}));
  EXPECT_EQ(t.wire_at(s, 0), std::nullopt);
}

TEST(Topology, PortExclusivity) {
  Topology t;
  const NodeId s1 = t.add_switch();
  const NodeId s2 = t.add_switch();
  const NodeId s3 = t.add_switch();
  t.connect(s1, 0, s2, 0);
  EXPECT_THROW(t.connect(s1, 0, s3, 0), CheckFailure);
}

TEST(Topology, PortRangeValidation) {
  Topology t;
  const NodeId h = t.add_host();
  const NodeId s = t.add_switch();
  EXPECT_THROW(t.connect(h, 1, s, 0), CheckFailure);   // hosts have port 0 only
  EXPECT_THROW(t.connect(h, 0, s, 8), CheckFailure);   // switch ports 0..7
  EXPECT_THROW(t.connect(h, 0, s, -1), CheckFailure);
}

TEST(Topology, SelfLoopOnSwitchAllowed) {
  // Real Myrinet installations used loopback cables on free ports.
  Topology t;
  const NodeId s = t.add_switch();
  const WireId w = t.connect(s, 2, s, 5);
  EXPECT_EQ(t.peer(s, 2), (PortRef{s, 5}));
  EXPECT_EQ(t.peer(s, 5), (PortRef{s, 2}));
  EXPECT_EQ(t.degree(s), 2);  // self-loop counts twice
  EXPECT_EQ(t.wire(w).opposite(PortRef{s, 2}), (PortRef{s, 5}));
}

TEST(Topology, SamePortSelfLoopRejected) {
  Topology t;
  const NodeId s = t.add_switch();
  EXPECT_THROW(t.connect(s, 2, s, 2), CheckFailure);
}

TEST(Topology, ParallelWiresAllowed) {
  Topology t;
  const NodeId a = t.add_switch();
  const NodeId b = t.add_switch();
  t.connect(a, 0, b, 0);
  t.connect(a, 1, b, 1);
  EXPECT_EQ(t.num_wires(), 2u);
  EXPECT_EQ(t.degree(a), 2);
}

TEST(Topology, ConnectAnyUsesLowestFreePorts) {
  Topology t;
  const NodeId a = t.add_switch();
  const NodeId b = t.add_switch();
  t.connect(a, 0, b, 3);
  const WireId w = t.connect_any(a, b);
  const Wire& wire = t.wire(w);
  EXPECT_EQ(wire.a.port, 1);  // lowest free on a
  EXPECT_EQ(wire.b.port, 0);  // lowest free on b
}

TEST(Topology, ConnectAnySelfLoopPicksTwoPorts) {
  Topology t;
  const NodeId s = t.add_switch();
  const WireId w = t.connect_any(s, s);
  const Wire& wire = t.wire(w);
  EXPECT_EQ(wire.a.node, s);
  EXPECT_EQ(wire.b.node, s);
  EXPECT_NE(wire.a.port, wire.b.port);
}

TEST(Topology, ConnectAnyFullNodeThrows) {
  Topology t;
  const NodeId h1 = t.add_host();
  const NodeId h2 = t.add_host();
  const NodeId s = t.add_switch();
  t.connect(h1, 0, s, 0);
  EXPECT_THROW(t.connect_any(h1, s), CheckFailure);
  (void)h2;
}

TEST(Topology, DisconnectFreesPorts) {
  Topology t;
  const NodeId a = t.add_switch();
  const NodeId b = t.add_switch();
  const WireId w = t.connect(a, 4, b, 6);
  t.disconnect(w);
  EXPECT_EQ(t.num_wires(), 0u);
  EXPECT_FALSE(t.wire_alive(w));
  EXPECT_EQ(t.wire_at(a, 4), std::nullopt);
  // Ports are reusable.
  t.connect(a, 4, b, 6);
  EXPECT_EQ(t.num_wires(), 1u);
}

TEST(Topology, DoubleDisconnectThrows) {
  Topology t;
  const NodeId a = t.add_switch();
  const NodeId b = t.add_switch();
  const WireId w = t.connect(a, 0, b, 0);
  t.disconnect(w);
  EXPECT_THROW(t.disconnect(w), CheckFailure);
}

TEST(Topology, RemoveNodeDetachesWires) {
  Topology t;
  const NodeId h = t.add_host("gone");
  const NodeId s1 = t.add_switch();
  const NodeId s2 = t.add_switch();
  t.connect(h, 0, s1, 0);
  t.connect(s1, 1, s2, 1);
  t.remove_node(s1);
  EXPECT_FALSE(t.node_alive(s1));
  EXPECT_EQ(t.num_switches(), 1u);
  EXPECT_EQ(t.num_wires(), 0u);
  EXPECT_EQ(t.wire_at(h, 0), std::nullopt);
  EXPECT_EQ(t.degree(s2), 0);
}

TEST(Topology, RemovedHostNameIsReusable) {
  Topology t;
  const NodeId h = t.add_host("n");
  t.remove_node(h);
  EXPECT_EQ(t.find_host("n"), std::nullopt);
  const NodeId h2 = t.add_host("n");
  EXPECT_EQ(t.find_host("n"), h2);
}

TEST(Topology, AccessDeadNodeThrows) {
  Topology t;
  const NodeId s = t.add_switch();
  t.remove_node(s);
  EXPECT_THROW((void)t.kind(s), CheckFailure);
  EXPECT_THROW((void)t.neighbors(s), CheckFailure);
}

TEST(Topology, LiveListsSkipTombstones) {
  Topology t;
  const NodeId h1 = t.add_host();
  const NodeId s1 = t.add_switch();
  const NodeId h2 = t.add_host();
  t.remove_node(h1);
  EXPECT_EQ(t.nodes(), (std::vector<NodeId>{s1, h2}));
  EXPECT_EQ(t.hosts(), (std::vector<NodeId>{h2}));
  EXPECT_EQ(t.switches(), (std::vector<NodeId>{s1}));
}

TEST(Topology, NeighborsInPortOrder) {
  Topology t;
  const NodeId s = t.add_switch();
  const NodeId a = t.add_switch();
  const NodeId b = t.add_switch();
  t.connect(s, 5, a, 0);
  t.connect(s, 2, b, 7);
  const auto nb = t.neighbors(s);
  ASSERT_EQ(nb.size(), 2u);
  EXPECT_EQ(nb[0], (PortRef{b, 7}));  // port 2 first
  EXPECT_EQ(nb[1], (PortRef{a, 0}));
}

TEST(Topology, FreePortSkipsUsed) {
  Topology t;
  const NodeId s = t.add_switch();
  const NodeId o = t.add_switch();
  t.connect(s, 0, o, 0);
  t.connect(s, 1, o, 1);
  EXPECT_EQ(t.free_port(s), 2);
}

TEST(Topology, CompactedRemovesTombstonesAndPreservesStructure) {
  Topology t;
  const NodeId h1 = t.add_host("a");
  const NodeId s1 = t.add_switch("sw1");
  const NodeId s2 = t.add_switch("sw2");
  const NodeId h2 = t.add_host("b");
  t.connect(h1, 0, s1, 3);
  t.connect(s1, 4, s2, 5);
  t.connect(h2, 0, s2, 2);
  t.remove_node(h2);

  const Topology c = t.compacted();
  EXPECT_EQ(c.num_hosts(), 1u);
  EXPECT_EQ(c.num_switches(), 2u);
  EXPECT_EQ(c.num_wires(), 2u);
  EXPECT_EQ(c.node_capacity(), 3u);  // dense
  const auto h = c.find_host("a");
  ASSERT_TRUE(h.has_value());
  const auto far = c.peer(*h, 0);
  ASSERT_TRUE(far.has_value());
  EXPECT_EQ(c.name(far->node), "sw1");
  EXPECT_EQ(far->port, 3);
}

TEST(Topology, StructuralEquality) {
  Topology a;
  const NodeId ha = a.add_host("x");
  const NodeId sa = a.add_switch("s");
  a.connect(ha, 0, sa, 1);

  Topology b;
  const NodeId hb = b.add_host("x");
  const NodeId sb = b.add_switch("s");
  b.connect(hb, 0, sb, 1);
  EXPECT_TRUE(a.structurally_equal(b));

  Topology c;
  const NodeId hc = c.add_host("x");
  const NodeId sc = c.add_switch("s");
  c.connect(hc, 0, sc, 2);  // different port
  EXPECT_FALSE(a.structurally_equal(c));
}

TEST(Topology, CopySemanticsAreDeep) {
  Topology a;
  const NodeId s1 = a.add_switch();
  const NodeId s2 = a.add_switch();
  a.connect(s1, 0, s2, 0);
  Topology b = a;
  b.connect(s1, 1, s2, 1);
  EXPECT_EQ(a.num_wires(), 1u);
  EXPECT_EQ(b.num_wires(), 2u);
}

}  // namespace
}  // namespace sanmap::topo
