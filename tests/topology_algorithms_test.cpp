// Tests for graph algorithms: BFS, diameter, bridges, the separated set F,
// the core N - F, and Q / search depth (paper Definitions 2-3, Lemma 1).
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "topology/algorithms.hpp"
#include "topology/generators.hpp"
#include "topology/topology.hpp"

namespace sanmap::topo {
namespace {

/// host0 -- sw0 -- sw1 -- host1, a minimal line network.
Topology line_network() {
  Topology t;
  const NodeId h0 = t.add_host("h0");
  const NodeId s0 = t.add_switch();
  const NodeId s1 = t.add_switch();
  const NodeId h1 = t.add_host("h1");
  t.connect(h0, 0, s0, 0);
  t.connect(s0, 1, s1, 1);
  t.connect(h1, 0, s1, 0);
  return t;
}

TEST(BfsDistances, LineNetwork) {
  const Topology t = line_network();
  const NodeId h0 = *t.find_host("h0");
  const auto dist = bfs_distances(t, h0);
  EXPECT_EQ(dist[h0], 0);
  EXPECT_EQ(dist[*t.find_host("h1")], 3);
}

TEST(BfsDistances, UnreachableIsMinusOne) {
  Topology t;
  const NodeId h = t.add_host();
  const NodeId s = t.add_switch();  // not connected
  const auto dist = bfs_distances(t, h);
  EXPECT_EQ(dist[h], 0);
  EXPECT_EQ(dist[s], -1);
}

TEST(Connected, DetectsDisconnection) {
  Topology t = line_network();
  EXPECT_TRUE(connected(t));
  t.add_switch();
  EXPECT_FALSE(connected(t));
}

TEST(Components, CountsAndLabels) {
  Topology t = line_network();
  const NodeId lone = t.add_switch();
  std::vector<int> comp;
  EXPECT_EQ(components(t, comp), 2);
  EXPECT_EQ(comp[lone], 1);
  EXPECT_EQ(comp[*t.find_host("h0")], 0);
}

TEST(Diameter, LineNetwork) {
  EXPECT_EQ(diameter(line_network()), 3);  // h0 .. h1
}

TEST(Diameter, StarTopology) {
  // host - leaf - center - leaf - host: diameter 4.
  EXPECT_EQ(diameter(star(3, 1)), 4);
}

TEST(Bridges, EveryEdgeOfATreeIsABridge) {
  const Topology t = line_network();
  EXPECT_EQ(bridges(t).size(), t.num_wires());
}

TEST(Bridges, CycleHasNoBridges) {
  const Topology t = ring(4, 0);
  EXPECT_TRUE(bridges(t).empty());
}

TEST(Bridges, ParallelWiresAreNotBridges) {
  Topology t;
  const NodeId a = t.add_switch();
  const NodeId b = t.add_switch();
  t.connect(a, 0, b, 0);
  t.connect(a, 1, b, 1);
  EXPECT_TRUE(bridges(t).empty());
}

TEST(Bridges, MixedGraph) {
  // Triangle a-b-c plus a pendant d attached to a: only a-d is a bridge.
  Topology t;
  const NodeId a = t.add_switch();
  const NodeId b = t.add_switch();
  const NodeId c = t.add_switch();
  const NodeId d = t.add_switch();
  t.connect(a, 0, b, 0);
  t.connect(b, 1, c, 1);
  t.connect(c, 0, a, 1);
  const WireId pendant = t.connect(a, 2, d, 0);
  const auto result = bridges(t);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0], pendant);
}

TEST(Bridges, SelfLoopIsNotABridge) {
  Topology t;
  const NodeId a = t.add_switch();
  const NodeId b = t.add_switch();
  const WireId real = t.connect(a, 0, b, 0);
  t.connect(a, 1, a, 2);  // loopback cable
  const auto result = bridges(t);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0], real);
}

TEST(SwitchBridges, HostLinksExcluded) {
  const Topology t = line_network();
  // h0-s0, s0-s1, s1-h1 are all bridges but only s0-s1 is a switch-bridge.
  const auto sb = switch_bridges(t);
  ASSERT_EQ(sb.size(), 1u);
  const Wire& w = t.wire(sb[0]);
  EXPECT_TRUE(t.is_switch(w.a.node));
  EXPECT_TRUE(t.is_switch(w.b.node));
}

TEST(SeparatedSet, EmptyWhenNoSwitchBridges) {
  const Topology t = ring(5, 1);
  const auto f = separated_set(t);
  EXPECT_TRUE(std::none_of(f.begin(), f.end(), [](bool b) { return b; }));
}

TEST(SeparatedSet, LineNetworkCoreIsEverything) {
  // s0-s1 is a switch-bridge, but both sides contain hosts, so F is empty.
  const auto f = separated_set(line_network());
  EXPECT_TRUE(std::none_of(f.begin(), f.end(), [](bool b) { return b; }));
}

TEST(SeparatedSet, TailBehindSwitchBridgeIsInF) {
  common::Rng rng(42);
  const Topology t = with_switch_tail(5, 6, 3, rng);
  const auto f = separated_set(t);
  int in_f = 0;
  for (const NodeId n : t.nodes()) {
    if (f[n]) {
      EXPECT_TRUE(t.is_switch(n));
      ++in_f;
    }
  }
  EXPECT_EQ(in_f, 3);
}

TEST(Core, RemovesExactlyF) {
  common::Rng rng(7);
  const Topology t = with_switch_tail(6, 8, 2, rng);
  const auto f = separated_set(t);
  const auto f_count = static_cast<std::size_t>(
      std::count(f.begin(), f.end(), true));
  EXPECT_GE(f_count, 2u);  // at least the deliberately attached tail
  const Topology c = core(t);
  EXPECT_EQ(c.num_nodes(), t.num_nodes() - f_count);
  EXPECT_EQ(c.num_hosts(), t.num_hosts());  // F contains only switches
  for (const NodeId n : t.nodes()) {
    EXPECT_EQ(c.node_alive(n), !f[n]);
  }
  EXPECT_TRUE(connected(c));
}

TEST(QOf, LineNetworkValues) {
  const Topology t = line_network();
  const NodeId h0 = *t.find_host("h0");
  const NodeId h1 = *t.find_host("h1");
  // Walk h0 -> h0 (length 0) then h0 -> nearest host... Q(h0): shortest
  // walk from h0 through h0 to any host. Going out to s0 and back reuses
  // the first wire, which is allowed only as first-and-last: h0-s0-h0 has
  // length 2 using the wire twice (first == last). Q(h0) = 0 + ... the
  // degenerate walk h0 (length 0) already starts and ends at a host, but
  // Definition 2 requires reaching *a host* after v; the zero-length walk
  // ends at h0 which is a host, so Q(h0) = 0.
  EXPECT_EQ(q_of(t, h0, h0), 0);
  // h0 -> s0: then on to a host: continue to s1, h1: total 3. Returning to
  // h0 would reuse the h0 wire as 2nd edge (not last==first of the whole
  // walk? it IS first and last of the walk h0-s0-h0). Length 2. So Q(s0)=2.
  const auto switches = t.switches();
  const NodeId s0 = switches[0];
  const NodeId s1 = switches[1];
  EXPECT_EQ(q_of(t, h0, s0), 2);
  EXPECT_EQ(q_of(t, h0, s1), 3);  // h0-s0-s1-h1
  EXPECT_EQ(q_of(t, h0, h1), 3);
  EXPECT_EQ(q_value(t, h0), 3);
}

TEST(QOf, UndefinedBehindSwitchBridge) {
  common::Rng rng(3);
  const Topology t = with_switch_tail(5, 5, 2, rng);
  const auto f = separated_set(t);
  const NodeId mapper = t.hosts().front();
  for (const NodeId n : t.nodes()) {
    EXPECT_EQ(q_of(t, mapper, n).has_value(), !f[n])
        << "node " << n << " (" << t.name(n) << ")";
  }
}

TEST(QOf, RingHasNoFirstLastException) {
  // Ring of 3 switches, hosts on two of them. Q is finite everywhere
  // because the cycle provides edge-disjoint return paths.
  Topology t = ring(3, 0);
  const auto sw = t.switches();
  const NodeId h0 = t.add_host("h0");
  const NodeId h1 = t.add_host("h1");
  t.connect(h0, 0, sw[0], 2);
  t.connect(h1, 0, sw[1], 2);
  // Q(sw[2]): walk h0, sw0, sw2, sw1, h1: length 4, no edge reuse.
  EXPECT_EQ(q_of(t, h0, sw[2]), 4);
}

TEST(SearchDepth, MatchesQPlusDPlusOne) {
  const Topology t = line_network();
  const NodeId h0 = *t.find_host("h0");
  EXPECT_EQ(search_depth(t, h0), 3 + 3 + 1);
}

TEST(QValue, RequiresPaperAssumptions) {
  Topology t;
  t.add_host("only");
  t.add_switch();
  EXPECT_THROW(q_value(t, 0), common::CheckFailure);
}

TEST(SwitchFarthestFromHosts, PicksDeepestSwitch) {
  // star: center is 2 hops from every host, leaves are 1 hop.
  const Topology t = star(4, 2);
  const NodeId far = switch_farthest_from_hosts(t);
  EXPECT_EQ(t.name(far), "center");
}

TEST(SwitchFarthestFromHosts, IgnoreListExcludesUtilityHost) {
  // Chain h - s0 - s1 - s2 with a utility host on s2. With the utility
  // host counted, s1 (distance 2 from both hosts) is the farthest; ignoring
  // it, s2 (distance 3 from h) is.
  Topology t;
  const NodeId h = t.add_host("h");
  const NodeId s0 = t.add_switch();
  const NodeId s1 = t.add_switch();
  const NodeId s2 = t.add_switch();
  t.connect(h, 0, s0, 0);
  t.connect(s0, 1, s1, 1);
  t.connect(s1, 2, s2, 2);
  const NodeId util = t.add_host("util");
  t.connect(util, 0, s2, 0);
  EXPECT_EQ(switch_farthest_from_hosts(t), s1);
  EXPECT_EQ(switch_farthest_from_hosts(t, {util}), s2);
}

}  // namespace
}  // namespace sanmap::topo
