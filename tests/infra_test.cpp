// Tests for the operational infrastructure: the leveled logger, probe
// transcripts with replay validation, and the model-graph invariant
// checker exercised across full mapping runs.
#include <gtest/gtest.h>

#include <sstream>

#include "common/log.hpp"
#include "mapper/berkeley_mapper.hpp"
#include "mapper/model_graph.hpp"
#include "probe/probe_engine.hpp"
#include "simnet/network.hpp"
#include "topology/algorithms.hpp"
#include "topology/generators.hpp"
#include "topology/isomorphism.hpp"

namespace sanmap {
namespace {

using topo::NodeId;
using topo::Topology;

// ------------------------------------------------------------------ log ----

class LogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    common::set_log_sink(&captured_);
    saved_ = common::log_threshold();
  }
  void TearDown() override {
    common::set_log_sink(nullptr);
    common::set_log_threshold(saved_);
  }
  std::ostringstream captured_;
  common::LogLevel saved_ = common::LogLevel::kWarning;
};

TEST_F(LogTest, ThresholdFiltersMessages) {
  common::set_log_threshold(common::LogLevel::kWarning);
  SANMAP_LOG(kDebug, "test", "hidden " << 1);
  SANMAP_LOG(kWarning, "test", "shown " << 2);
  const std::string out = captured_.str();
  EXPECT_EQ(out.find("hidden"), std::string::npos);
  EXPECT_NE(out.find("shown 2"), std::string::npos);
  EXPECT_NE(out.find("[warn] [test]"), std::string::npos);
}

TEST_F(LogTest, VerboseLevelEnablesDebug) {
  common::set_log_threshold(common::LogLevel::kDebug);
  EXPECT_TRUE(common::log_enabled(common::LogLevel::kDebug));
  SANMAP_LOG(kDebug, "x", "now visible");
  EXPECT_NE(captured_.str().find("now visible"), std::string::npos);
}

TEST_F(LogTest, OffSilencesEverything) {
  common::set_log_threshold(common::LogLevel::kOff);
  SANMAP_LOG(kError, "x", "nothing");
  EXPECT_TRUE(captured_.str().empty());
}

TEST_F(LogTest, LevelNames) {
  EXPECT_STREQ(common::to_string(common::LogLevel::kDebug), "debug");
  EXPECT_STREQ(common::to_string(common::LogLevel::kError), "error");
}

// ----------------------------------------------------------- transcripts ----

TEST(Transcript, RecordsEveryProbeAndReplays) {
  const Topology t = topo::now_subcluster(topo::Subcluster::kC, "C");
  const NodeId mapper_host = *t.find_host("C.util");
  simnet::Network net(t);
  probe::ProbeOptions options;
  options.record_transcript = true;
  probe::ProbeEngine engine(net, mapper_host, options);
  mapper::MapperConfig config;
  config.search_depth = topo::search_depth(t, mapper_host);
  const auto result = mapper::BerkeleyMapper(engine, config).run();
  ASSERT_TRUE(topo::isomorphic(result.map, topo::core(t)));

  // One entry per probe sent.
  EXPECT_EQ(engine.transcript().size(), result.probes.total());

  // The transcript replays exactly against the same network...
  simnet::Network replay_net(t);
  EXPECT_TRUE(probe::transcript_replays(engine.transcript(), replay_net,
                                        mapper_host));
  // ...and is inconsistent with a modified one.
  Topology changed = t;
  changed.remove_node(*changed.find_host("C.h3"));
  simnet::Network changed_net(changed);
  EXPECT_FALSE(probe::transcript_replays(engine.transcript(), changed_net,
                                         mapper_host));
}

TEST(Transcript, WriteFormatsOneLinePerProbe) {
  Topology t;
  const NodeId h0 = t.add_host("h0");
  const NodeId s0 = t.add_switch();
  const NodeId h1 = t.add_host("h1");
  t.connect(h0, 0, s0, 2);
  t.connect(h1, 0, s0, 4);
  simnet::Network net(t);
  probe::ProbeOptions options;
  options.record_transcript = true;
  probe::ProbeEngine engine(net, h0, options);
  engine.switch_probe(simnet::Route{});      // hit: bounce off s0
  engine.host_probe(simnet::Route{2});       // h1
  std::ostringstream oss;
  engine.write_transcript(oss);
  const std::string out = oss.str();
  EXPECT_NE(out.find("h 1 h1 +2"), std::string::npos);
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 2);
}

TEST(Transcript, DisabledByDefault) {
  const Topology t = topo::star(2, 1);
  simnet::Network net(t);
  probe::ProbeEngine engine(net, t.hosts().front());
  engine.switch_probe(simnet::Route{});
  EXPECT_TRUE(engine.transcript().empty());
}

// ------------------------------------------------------ validate() sweeps --

TEST(ModelGraphValidate, HoldsThroughFullMappingRuns) {
  common::Rng rng(4242);
  for (int trial = 0; trial < 6; ++trial) {
    common::Rng topo_rng(rng.next());
    const Topology t = topo::random_irregular(6 + trial, 6, trial, topo_rng);
    simnet::Network net(t);
    probe::ProbeEngine engine(net, t.hosts().front());
    mapper::MapperConfig config;
    config.search_depth = topo::search_depth(t, t.hosts().front());
    mapper::BerkeleyMapper mapper(engine, config);
    const auto result = mapper.run();
    EXPECT_TRUE(topo::isomorphic(result.map, topo::core(t)));
  }
  // Direct structural exercise with merges, dedupes, and pruning.
  mapper::ModelGraph m;
  const auto root = m.add_host_vertex({}, "mapper");
  const auto s0 = m.add_switch_vertex({});
  m.add_edge(root, 0, s0, 0);
  m.validate();
  const auto h1 = m.add_host_vertex(simnet::Route{1}, "h1");
  m.add_edge(s0, 1, h1, 0);
  const auto s1 = m.add_switch_vertex(simnet::Route{2});
  m.add_edge(s0, 2, s1, 0);
  // h1 rediscovered through s1 at turn -3: merging aligns s1 into s0 with
  // shift 4, turning the s0-s1 edge into a legal loopback cable (ports 2
  // and 4 of the one actual switch).
  const auto h1b = m.add_host_vertex(simnet::Route{2, -3}, "h1");
  m.add_edge(s1, -3, h1b, 0);
  m.stabilize();
  m.validate();
  m.prune();
  m.validate();
}

TEST(ModelGraphValidate, CleanGraphPasses) {
  mapper::ModelGraph m;
  m.validate();  // empty
  m.add_host_vertex({}, "a");
  m.validate();
}

}  // namespace
}  // namespace sanmap
