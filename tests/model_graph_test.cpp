// Unit tests for the production model graph: merge mechanics, the
// offset-carrying alias table, slot-conflict cascades, pruning, extraction.
// Also covers the TurnFeasibility heuristic.
#include <gtest/gtest.h>

#include "common/check.hpp"
#include "mapper/model_graph.hpp"
#include "mapper/turn_feasibility.hpp"

namespace sanmap::mapper {
namespace {

using simnet::Route;

// ---------------------------------------------------------- model graph ----

TEST(ModelGraph, FreshVerticesAreCanonical) {
  ModelGraph m;
  const VertexId h = m.add_host_vertex(Route{}, "a");
  const VertexId s = m.add_switch_vertex(Route{1});
  EXPECT_TRUE(m.vertex_alive(h));
  EXPECT_TRUE(m.vertex_alive(s));
  EXPECT_EQ(m.resolve(h).vertex, h);
  EXPECT_EQ(m.resolve(h).shift, 0);
  EXPECT_EQ(m.live_vertices(), 2u);
  EXPECT_TRUE(m.stabilized());
}

TEST(ModelGraph, DuplicateHostSchedulesMerge) {
  ModelGraph m;
  const VertexId h1 = m.add_host_vertex(Route{1}, "same");
  const VertexId h2 = m.add_host_vertex(Route{2, 2}, "same");
  EXPECT_FALSE(m.stabilized());
  m.stabilize();
  EXPECT_EQ(m.live_vertices(), 1u);
  EXPECT_EQ(m.resolve(h2).vertex, h1);
  EXPECT_EQ(m.resolve(h2).shift, 0);
}

TEST(ModelGraph, HostMergeCascadesToSwitches) {
  // Two discovery paths to the same host imply their parent switches are
  // replicates; the shift realigns the second switch's indices.
  ModelGraph m;
  const VertexId s1 = m.add_switch_vertex(Route{});
  const VertexId h1 = m.add_host_vertex(Route{2}, "host");
  m.add_edge(s1, 2, h1, 0);  // s1 found it with turn +2

  const VertexId s2 = m.add_switch_vertex(Route{5});
  const VertexId h2 = m.add_host_vertex(Route{5, -1}, "host");
  m.add_edge(s2, -1, h2, 0);  // s2 found it with turn -1
  m.stabilize();

  // Hosts merged; both switch edges now sit in one slot of the canonical
  // host, so the switches merged too.
  EXPECT_EQ(m.live_vertices(), 2u);  // one host, one switch
  const Resolved rs2 = m.resolve(s2);
  EXPECT_EQ(rs2.vertex, s1);
  // s2's index -1 must equal s1's index 2: shift +3.
  EXPECT_EQ(rs2.shift, 3);
}

TEST(ModelGraph, SlotConflictMergesFarVertices) {
  // One switch port claims links to two "different" switches: they must be
  // the same switch (a port has one cable).
  ModelGraph m;
  const VertexId a = m.add_switch_vertex(Route{});
  const VertexId x = m.add_switch_vertex(Route{3});
  const VertexId y = m.add_switch_vertex(Route{9, 9});
  m.add_edge(a, 3, x, 0);
  EXPECT_TRUE(m.stabilized());
  m.add_edge(a, 3, y, 4);
  EXPECT_FALSE(m.stabilized());
  m.stabilize();
  EXPECT_EQ(m.live_vertices(), 2u);
  const Resolved ry = m.resolve(y);
  EXPECT_EQ(ry.vertex, x);
  EXPECT_EQ(ry.shift, -4);  // y's 4 aligns to x's 0
  // The duplicate edge was deduplicated.
  EXPECT_EQ(m.live_edges(), 1u);
}

TEST(ModelGraph, MergePropagatesExploredFlag) {
  ModelGraph m;
  const VertexId a = m.add_switch_vertex(Route{});
  const VertexId b = m.add_switch_vertex(Route{1});
  m.mark_explored(b);
  const VertexId h1 = m.add_host_vertex(Route{2}, "h");
  const VertexId h2 = m.add_host_vertex(Route{1, 2}, "h");
  m.add_edge(a, 2, h1, 0);
  m.add_edge(b, 2, h2, 0);
  m.stabilize();
  const Resolved r = m.resolve(a);
  EXPECT_TRUE(m.vertex(r.vertex).explored);
}

TEST(ModelGraph, AddEdgeResolvesMergedEndpoints) {
  // Attaching an edge to a merged-away vertex lands on the canonical one
  // with the shift applied.
  ModelGraph m;
  const VertexId s1 = m.add_switch_vertex(Route{});
  const VertexId h1 = m.add_host_vertex(Route{2}, "h");
  m.add_edge(s1, 2, h1, 0);
  const VertexId s2 = m.add_switch_vertex(Route{5});
  const VertexId h2 = m.add_host_vertex(Route{5, -1}, "h");
  m.add_edge(s2, -1, h2, 0);
  m.stabilize();  // s2 == s1 with shift 3

  const VertexId child = m.add_switch_vertex(Route{5, 4});
  m.add_edge(s2, 4, child, 0);  // s2 is dead; should land at s1 index 7
  m.stabilize();
  const Resolved rc = m.resolve(child);
  bool found = false;
  for (const SlotTable::Entry& entry : m.vertex(s1).slots) {
    const auto [far, far_index] = m.far_end(entry.edge, s1, entry.index);
    if (far == rc.vertex) {
      EXPECT_EQ(entry.index, 7);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(ModelGraph, InconsistentOffsetDetected) {
  // Merging the same pair twice with different shifts is a contradiction.
  ModelGraph m;
  const VertexId s1 = m.add_switch_vertex(Route{});
  const VertexId h1 = m.add_host_vertex(Route{2}, "h");
  m.add_edge(s1, 2, h1, 0);
  const VertexId s2 = m.add_switch_vertex(Route{5});
  const VertexId h2 = m.add_host_vertex(Route{5, -1}, "h");
  m.add_edge(s2, -1, h2, 0);
  m.stabilize();
  // Now claim s1 and s2 also share a host at incompatible indices.
  const VertexId h3 = m.add_host_vertex(Route{3}, "g");
  const VertexId h4 = m.add_host_vertex(Route{5, 5}, "g");
  m.add_edge(s1, 3, h3, 0);
  m.add_edge(s2, 1, h4, 0);  // implies shift 2, but the truth is 3
  EXPECT_THROW(m.stabilize(), common::CheckFailure);
}

TEST(ModelGraph, HostSwitchConflictDetected) {
  ModelGraph m;
  const VertexId a = m.add_switch_vertex(Route{});
  const VertexId sw = m.add_switch_vertex(Route{3});
  const VertexId host = m.add_host_vertex(Route{3}, "h");
  m.add_edge(a, 3, sw, 0);
  // The conflict is detected as soon as the second edge lands in the slot.
  EXPECT_THROW(m.add_edge(a, 3, host, 0), common::CheckFailure);
}

TEST(ModelGraph, PruneRemovesDanglingSwitchChains) {
  ModelGraph m;
  const VertexId root = m.add_host_vertex(Route{}, "mapper");
  const VertexId s0 = m.add_switch_vertex(Route{});
  m.add_edge(root, 0, s0, 0);
  const VertexId h = m.add_host_vertex(Route{2}, "h");
  m.add_edge(s0, 2, h, 0);
  // A chain of unexplored switch vertices hanging off s0.
  const VertexId t0 = m.add_switch_vertex(Route{3});
  m.add_edge(s0, 3, t0, 0);
  const VertexId t1 = m.add_switch_vertex(Route{3, 1});
  m.add_edge(t0, 1, t1, 0);
  m.stabilize();
  EXPECT_EQ(m.prune(), 2);  // t1 first, then t0
  EXPECT_FALSE(m.vertex_alive(t0));
  EXPECT_FALSE(m.vertex_alive(t1));
  EXPECT_TRUE(m.vertex_alive(s0));
  EXPECT_EQ(m.live_edges(), 2u);
}

TEST(ModelGraph, PruneKeepsHosts) {
  ModelGraph m;
  const VertexId h = m.add_host_vertex(Route{}, "alone");
  m.stabilize();
  EXPECT_EQ(m.prune(), 0);
  EXPECT_TRUE(m.vertex_alive(h));
}

TEST(ModelGraph, ExtractBuildsTopologyWithNormalizedPorts) {
  ModelGraph m;
  const VertexId root = m.add_host_vertex(Route{}, "mapper");
  const VertexId s = m.add_switch_vertex(Route{});
  m.add_edge(root, 0, s, 0);
  const VertexId h = m.add_host_vertex(Route{-3}, "h");
  m.add_edge(s, -3, h, 0);  // s's indices: {-3, 0} -> ports {0, 3}
  m.stabilize();
  const topo::Topology t = m.extract();
  EXPECT_EQ(t.num_hosts(), 2u);
  EXPECT_EQ(t.num_switches(), 1u);
  EXPECT_EQ(t.num_wires(), 2u);
  const auto mapper = t.find_host("mapper");
  ASSERT_TRUE(mapper.has_value());
  const auto far = t.peer(*mapper, 0);
  ASSERT_TRUE(far.has_value());
  EXPECT_EQ(far->port, 3);  // index 0 - base(-3)
}

TEST(ModelGraph, ExtractRejectsUnstabilizedGraph) {
  ModelGraph m;
  m.add_host_vertex(Route{}, "x");
  m.add_host_vertex(Route{1}, "x");
  EXPECT_THROW((void)m.extract(), common::CheckFailure);
}

TEST(ModelGraph, ModelSelfLoopSurvivesExtraction) {
  // A switch with a loopback cable: the merged model has an edge from the
  // switch to itself at two different indices.
  ModelGraph m;
  const VertexId root = m.add_host_vertex(Route{}, "mapper");
  const VertexId s = m.add_switch_vertex(Route{});
  m.add_edge(root, 0, s, 0);
  m.add_edge(s, 2, s, 4);
  m.stabilize();
  const topo::Topology t = m.extract();
  EXPECT_EQ(t.num_switches(), 1u);
  EXPECT_EQ(t.num_wires(), 2u);
  const topo::NodeId sw = t.switches().front();
  int self_loops = 0;
  for (const topo::WireId w : t.wires()) {
    const topo::Wire& wire = t.wire(w);
    if (wire.a.node == sw && wire.b.node == sw) {
      ++self_loops;
    }
  }
  EXPECT_EQ(self_loops, 1);
}

// ------------------------------------------------------ turn feasibility ----

TEST(TurnFeasibility, AllTurnsFeasibleInitially) {
  TurnFeasibility f;
  for (int t = -7; t <= 7; ++t) {
    EXPECT_TRUE(f.feasible(t)) << t;
  }
  EXPECT_EQ(f.entry_lo(), 0);
  EXPECT_EQ(f.entry_hi(), 7);
}

TEST(TurnFeasibility, SuccessNarrowsEntryRange) {
  TurnFeasibility f;
  f.record_success(5);  // entry + 5 <= 7 -> entry <= 2
  EXPECT_EQ(f.entry_lo(), 0);
  EXPECT_EQ(f.entry_hi(), 2);
  EXPECT_TRUE(f.feasible(7));    // entry 0 works
  EXPECT_TRUE(f.feasible(-2));   // entry 2 works
  EXPECT_FALSE(f.feasible(-3));  // would need entry >= 3
}

TEST(TurnFeasibility, FullSpanPinsEntryPort) {
  TurnFeasibility f;
  f.record_success(-2);
  f.record_success(5);  // span 7: entry exactly 2
  EXPECT_EQ(f.entry_lo(), 2);
  EXPECT_EQ(f.entry_hi(), 2);
  for (int t = -7; t <= 7; ++t) {
    EXPECT_EQ(f.feasible(t), t >= -2 && t <= 5) << t;
  }
}

TEST(TurnFeasibility, OverSpanIsContradiction) {
  TurnFeasibility f;
  f.record_success(-3);
  EXPECT_THROW(f.record_success(5), common::CheckFailure);
}

TEST(TurnFeasibility, ExplorationOrders) {
  const auto naive = TurnFeasibility::exploration_order(false);
  ASSERT_EQ(naive.size(), 14u);
  EXPECT_EQ(naive.front(), -7);
  EXPECT_EQ(naive.back(), 7);
  EXPECT_TRUE(std::find(naive.begin(), naive.end(), 0) == naive.end());

  const auto adaptive = TurnFeasibility::exploration_order(true);
  ASSERT_EQ(adaptive.size(), 14u);
  EXPECT_EQ(adaptive[0], 1);
  EXPECT_EQ(adaptive[1], -1);
  EXPECT_EQ(adaptive[2], 2);
  EXPECT_TRUE(std::find(adaptive.begin(), adaptive.end(), 0) ==
              adaptive.end());
}

}  // namespace
}  // namespace sanmap::mapper
