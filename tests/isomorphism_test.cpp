// Tests for the isomorphism oracle, including the port-offset mode that the
// mapper's output requires (Definition 1's indexing offsets).
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "topology/algorithms.hpp"
#include "topology/generators.hpp"
#include "topology/isomorphism.hpp"

namespace sanmap::topo {
namespace {

Topology tiny() {
  Topology t;
  const NodeId h0 = t.add_host("h0");
  const NodeId h1 = t.add_host("h1");
  const NodeId s0 = t.add_switch();
  const NodeId s1 = t.add_switch();
  t.connect(h0, 0, s0, 2);
  t.connect(s0, 3, s1, 5);
  t.connect(h1, 0, s1, 6);
  return t;
}

TEST(Isomorphism, IdenticalTopologiesMatchExactly) {
  const Topology t = tiny();
  IsoOptions exact;
  exact.port_mode = IsoOptions::PortMode::kExact;
  EXPECT_TRUE(isomorphic(t, t, exact));
}

TEST(Isomorphism, WitnessMapsNodesCorrectly) {
  const Topology t = tiny();
  const auto iso = find_isomorphism(t, t);
  ASSERT_TRUE(iso.has_value());
  for (const NodeId n : t.nodes()) {
    EXPECT_EQ(iso->to[n], n);
    EXPECT_EQ(iso->offset[n], 0);
  }
}

TEST(Isomorphism, NodeRenumberingIsAccepted) {
  // Same network built in a different order.
  Topology u;
  const NodeId s1 = u.add_switch();
  const NodeId h1 = u.add_host("h1");
  const NodeId s0 = u.add_switch();
  const NodeId h0 = u.add_host("h0");
  u.connect(h0, 0, s0, 2);
  u.connect(s0, 3, s1, 5);
  u.connect(h1, 0, s1, 6);
  EXPECT_TRUE(isomorphic(tiny(), u));
}

TEST(Isomorphism, PortShiftAcceptedOnlyInOffsetMode) {
  // Shift s0's ports by +1.
  Topology u;
  const NodeId h0 = u.add_host("h0");
  const NodeId h1 = u.add_host("h1");
  const NodeId s0 = u.add_switch();
  const NodeId s1 = u.add_switch();
  u.connect(h0, 0, s0, 3);
  u.connect(s0, 4, s1, 5);
  u.connect(h1, 0, s1, 6);

  IsoOptions offset;
  offset.port_mode = IsoOptions::PortMode::kUpToOffset;
  EXPECT_TRUE(isomorphic(tiny(), u, offset));

  IsoOptions exact;
  exact.port_mode = IsoOptions::PortMode::kExact;
  EXPECT_FALSE(isomorphic(tiny(), u, exact));
}

TEST(Isomorphism, NonUniformPortShuffleRejectedInOffsetMode) {
  // Swap the two wires' ports on s0 (2<->3): the relative spacing changes,
  // so no constant offset maps one onto the other... unless the swap is
  // itself a shift. Build: h0 at port 3, s1 at port 2 (reversed order).
  Topology u;
  const NodeId h0 = u.add_host("h0");
  const NodeId h1 = u.add_host("h1");
  const NodeId s0 = u.add_switch();
  const NodeId s1 = u.add_switch();
  u.connect(h0, 0, s0, 3);
  u.connect(s0, 2, s1, 5);
  u.connect(h1, 0, s1, 6);
  EXPECT_FALSE(isomorphic(tiny(), u));
}

TEST(Isomorphism, HostNamesPinTheMapping) {
  // Swap the two host names: graphs are structurally isomorphic but the
  // named matching must fail because h0 now hangs off the other switch
  // (different port pattern in this asymmetric network).
  Topology u;
  const NodeId h0 = u.add_host("h1");  // names swapped
  const NodeId h1 = u.add_host("h0");
  const NodeId s0 = u.add_switch();
  const NodeId s1 = u.add_switch();
  u.connect(h0, 0, s0, 2);
  u.connect(s0, 3, s1, 5);
  u.connect(h1, 0, s1, 6);

  IsoOptions named;
  named.port_mode = IsoOptions::PortMode::kExact;
  EXPECT_FALSE(isomorphic(tiny(), u, named));

  IsoOptions anonymous = named;
  anonymous.match_host_names = false;
  EXPECT_TRUE(isomorphic(tiny(), u, anonymous));
}

TEST(Isomorphism, DifferentCountsRejectImmediately) {
  Topology u = tiny();
  u.add_switch();
  EXPECT_FALSE(isomorphic(tiny(), u));
}

TEST(Isomorphism, ParallelEdgeMultiplicityMatters) {
  Topology a;
  const NodeId a0 = a.add_switch();
  const NodeId a1 = a.add_switch();
  const NodeId a2 = a.add_switch();
  a.connect(a0, 0, a1, 0);
  a.connect(a0, 1, a1, 1);  // double link a0-a1
  a.connect(a1, 2, a2, 0);

  Topology b;
  const NodeId b0 = b.add_switch();
  const NodeId b1 = b.add_switch();
  const NodeId b2 = b.add_switch();
  b.connect(b0, 0, b1, 0);
  b.connect(b1, 1, b2, 1);  // double link b1-b2 instead
  b.connect(b1, 2, b2, 0);

  IsoOptions loose;
  loose.port_mode = IsoOptions::PortMode::kIgnore;
  loose.match_host_names = false;
  // Both have the same degree sequence (2, 3, 1 vs 1, 3, 2) — the mapping
  // exists structurally by reversing, so this SHOULD match.
  EXPECT_TRUE(isomorphic(a, b, loose));

  // Now break multiplicity: a triangle vs a double-edge-plus-pendant have
  // the same degree sequence but different multiplicities.
  Topology c;
  const NodeId c0 = c.add_switch();
  const NodeId c1 = c.add_switch();
  const NodeId c2 = c.add_switch();
  c.connect(c0, 0, c1, 0);
  c.connect(c1, 1, c2, 1);
  c.connect(c2, 0, c0, 1);  // triangle

  Topology d;
  const NodeId d0 = d.add_switch();
  const NodeId d1 = d.add_switch();
  const NodeId d2 = d.add_switch();
  d.connect(d0, 0, d1, 0);
  d.connect(d0, 1, d1, 1);
  d.connect(d1, 2, d2, 0);  // double edge + pendant: degrees 2,3,1
  EXPECT_FALSE(isomorphic(c, d, loose));
}

TEST(Isomorphism, SelfLoopsMustCorrespond) {
  Topology a;
  const NodeId s = a.add_switch();
  a.connect(s, 0, s, 1);

  Topology b;
  b.add_switch();

  IsoOptions loose;
  loose.port_mode = IsoOptions::PortMode::kIgnore;
  EXPECT_FALSE(isomorphic(a, b, loose));

  Topology c;
  const NodeId cs = c.add_switch();
  c.connect(cs, 3, cs, 4);  // shifted self-loop
  EXPECT_TRUE(isomorphic(a, c));
}

TEST(Isomorphism, HypercubeSelfIsomorphicUnderRelabeling) {
  const Topology cube = hypercube(3, 1);
  // Rebuild with host names permuted is NOT isomorphic under named match,
  // but the raw structure matches anonymously.
  IsoOptions anonymous;
  anonymous.match_host_names = false;
  anonymous.port_mode = IsoOptions::PortMode::kIgnore;
  EXPECT_TRUE(isomorphic(cube, hypercube(3, 1), anonymous));
}

TEST(Isomorphism, NowSubclusterRoundTrip) {
  const Topology c1 = now_subcluster(Subcluster::kC, "C");
  const Topology c2 = now_subcluster(Subcluster::kC, "C");
  IsoOptions exact;
  exact.port_mode = IsoOptions::PortMode::kExact;
  EXPECT_TRUE(isomorphic(c1, c2, exact));
}

TEST(Isomorphism, SubclustersAreNotMutuallyIsomorphic) {
  IsoOptions anonymous;
  anonymous.match_host_names = false;
  EXPECT_FALSE(isomorphic(now_subcluster(Subcluster::kA, "X"),
                          now_subcluster(Subcluster::kB, "X"), anonymous));
}

TEST(Isomorphism, RandomGraphSelfMatchWithShiftedPorts) {
  // Property: shifting every switch's wiring by a random feasible offset
  // preserves isomorphism in kUpToOffset mode.
  common::Rng rng(31);
  for (int trial = 0; trial < 10; ++trial) {
    const Topology t = random_irregular(8, 8, 4, rng);
    // Rebuild with each switch's ports shifted so the occupied span still
    // fits in 0..7.
    Topology shifted;
    std::vector<NodeId> remap(t.node_capacity());
    std::vector<Port> shift(t.node_capacity(), 0);
    for (const NodeId n : t.nodes()) {
      if (t.is_host(n)) {
        remap[n] = shifted.add_host(t.name(n));
      } else {
        remap[n] = shifted.add_switch(t.name(n));
        // Feasible shift range given occupied ports.
        Port lo = kSwitchPorts;
        Port hi = -1;
        for (Port p = 0; p < t.port_count(n); ++p) {
          if (t.wire_at(n, p)) {
            lo = std::min(lo, p);
            hi = std::max(hi, p);
          }
        }
        if (hi >= 0) {
          shift[n] = static_cast<Port>(
              rng.range(-lo, kSwitchPorts - 1 - hi));
        }
      }
    }
    for (const WireId w : t.wires()) {
      const Wire& wire = t.wire(w);
      shifted.connect(remap[wire.a.node], wire.a.port + shift[wire.a.node],
                      remap[wire.b.node], wire.b.port + shift[wire.b.node]);
    }
    EXPECT_TRUE(isomorphic(t, shifted)) << "trial " << trial;
  }
}

}  // namespace
}  // namespace sanmap::topo
