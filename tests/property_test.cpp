// Cross-module property tests: randomized sweeps asserting the system's
// invariants rather than specific values.
//
//  * topology fuzz: random mutation sequences keep the multigraph's
//    bookkeeping consistent and serialization faithful;
//  * simnet totality: any syntactically valid route produces a coherent
//    DeliveryResult and consistent counters;
//  * end-to-end: on random networks, map -> verify -> route -> deadlock
//    check -> replay all hold, including across reconfigurations.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.hpp"
#include "mapper/berkeley_mapper.hpp"
#include "mapper/robust_mapper.hpp"
#include "probe/probe_engine.hpp"
#include "routing/deadlock.hpp"
#include "routing/routes.hpp"
#include "simnet/fault_schedule.hpp"
#include "simnet/network.hpp"
#include "topology/algorithms.hpp"
#include "topology/generators.hpp"
#include "topology/isomorphism.hpp"
#include "topology/serialize.hpp"

namespace sanmap {
namespace {

using topo::NodeId;
using topo::Topology;

// ---------------------------------------------------------- topology fuzz --

TEST(PropertyTopology, RandomMutationSequencesKeepInvariants) {
  common::Rng rng(8080);
  for (int trial = 0; trial < 20; ++trial) {
    Topology t;
    std::vector<NodeId> live_nodes;
    std::vector<topo::WireId> live_wires;
    int name_counter = 0;
    for (int op = 0; op < 200; ++op) {
      switch (rng.below(5)) {
        case 0: {  // add host
          live_nodes.push_back(
              t.add_host("f" + std::to_string(name_counter++)));
          break;
        }
        case 1: {  // add switch
          live_nodes.push_back(t.add_switch());
          break;
        }
        case 2: {  // connect two random nodes with free ports
          if (live_nodes.size() < 2) {
            break;
          }
          const NodeId a = rng.pick(live_nodes);
          const NodeId b = rng.pick(live_nodes);
          if (!t.node_alive(a) || !t.node_alive(b) || a == b) {
            break;
          }
          if (t.free_port(a) && t.free_port(b)) {
            live_wires.push_back(t.connect_any(a, b));
          }
          break;
        }
        case 3: {  // disconnect a random wire
          if (live_wires.empty()) {
            break;
          }
          const topo::WireId w = rng.pick(live_wires);
          if (t.wire_alive(w)) {
            t.disconnect(w);
          }
          break;
        }
        case 4: {  // remove a random node
          if (live_nodes.empty()) {
            break;
          }
          const NodeId n = rng.pick(live_nodes);
          if (t.node_alive(n)) {
            t.remove_node(n);
          }
          break;
        }
        default:
          break;
      }
    }

    // Invariant: counts agree with exhaustive enumeration.
    EXPECT_EQ(t.hosts().size(), t.num_hosts());
    EXPECT_EQ(t.switches().size(), t.num_switches());
    EXPECT_EQ(t.wires().size(), t.num_wires());

    // Invariant: wires and ports are mutually consistent.
    std::size_t port_ends = 0;
    for (const NodeId n : t.nodes()) {
      for (topo::Port p = 0; p < t.port_count(n); ++p) {
        const auto w = t.wire_at(n, p);
        if (!w) {
          continue;
        }
        ++port_ends;
        const topo::Wire& wire = t.wire(*w);
        EXPECT_TRUE((wire.a == topo::PortRef{n, p}) ||
                    (wire.b == topo::PortRef{n, p}));
        // The far end points back at us.
        const topo::PortRef far = wire.opposite(topo::PortRef{n, p});
        EXPECT_EQ(t.wire_at(far.node, far.port), *w);
      }
    }
    EXPECT_EQ(port_ends, 2 * t.num_wires());

    // Invariant: degree sums to twice the wire count.
    std::size_t degree_sum = 0;
    for (const NodeId n : t.nodes()) {
      degree_sum += static_cast<std::size_t>(t.degree(n));
    }
    EXPECT_EQ(degree_sum, 2 * t.num_wires());

    // Invariant: compaction and serialization are faithful.
    const Topology dense = t.compacted();
    EXPECT_EQ(dense.num_hosts(), t.num_hosts());
    EXPECT_EQ(dense.num_wires(), t.num_wires());
    EXPECT_TRUE(dense.structurally_equal(topo::from_text(topo::to_text(
        dense))));
    topo::IsoOptions loose;
    loose.match_host_names = true;
    loose.port_mode = topo::IsoOptions::PortMode::kExact;
    EXPECT_TRUE(topo::isomorphic(dense, t.compacted(), loose));
  }
}

// --------------------------------------------------------- simnet totality --

TEST(PropertySimnet, RandomRoutesAlwaysProduceCoherentResults) {
  common::Rng rng(9090);
  for (int trial = 0; trial < 5; ++trial) {
    common::Rng topo_rng(rng.next());
    const Topology t = topo::random_irregular(8, 6, 4, topo_rng);
    for (const auto collision : {simnet::CollisionModel::kCircuit,
                                 simnet::CollisionModel::kCutThrough}) {
      simnet::Network net(t, collision);
      const auto hosts = t.hosts();
      for (int i = 0; i < 500; ++i) {
        const NodeId src = rng.pick(hosts);
        simnet::Route route;
        const auto len = rng.below(10);
        for (std::uint64_t j = 0; j < len; ++j) {
          route.push_back(static_cast<simnet::Turn>(rng.range(-7, 7)));
        }
        const auto r = net.send(src, route);
        // Coherence: hops within bounds, latency nonnegative, destination
        // set iff the message got anywhere.
        EXPECT_GE(r.hops, 0);
        EXPECT_LE(r.hops, static_cast<int>(route.size()) + 1);
        EXPECT_GE(r.latency.to_ns(), 0);
        if (r.delivered()) {
          EXPECT_TRUE(t.is_host(r.destination));
          EXPECT_EQ(r.hops, static_cast<int>(route.size()) + 1);
        }
        if (r.status == simnet::DeliveryStatus::kStrandedInNetwork) {
          EXPECT_TRUE(t.is_switch(r.destination));
        }
        if (r.status == simnet::DeliveryStatus::kHitHostTooSoon) {
          EXPECT_TRUE(t.is_host(r.destination));
          EXPECT_LT(r.hops, static_cast<int>(route.size()) + 1);
        }
      }
      const auto& counters = net.counters();
      std::uint64_t by_status = 0;
      for (std::size_t s = 0; s < simnet::kNumDeliveryStatuses; ++s) {
        by_status += counters.by_status[s];
      }
      EXPECT_EQ(by_status, counters.messages);
      EXPECT_EQ(counters.messages, 500u);
      net.reset_counters();
    }
  }
}

TEST(PropertySimnet, CutThroughDeliversASupersetOfCircuit) {
  // §1.2: "The set of all probe paths generated by probing the network
  // with packet routing is a superset of the sets generated with circuit
  // or cut-through routing." With default buffering, cut-through delivers
  // everything circuit does.
  common::Rng rng(7171);
  for (int trial = 0; trial < 5; ++trial) {
    common::Rng topo_rng(rng.next());
    const Topology t = topo::random_irregular(6, 4, 4, topo_rng);
    simnet::Network circuit(t, simnet::CollisionModel::kCircuit);
    simnet::Network cut(t, simnet::CollisionModel::kCutThrough);
    const auto hosts = t.hosts();
    for (int i = 0; i < 300; ++i) {
      const NodeId src = rng.pick(hosts);
      simnet::Route route;
      const auto len = rng.below(12);
      for (std::uint64_t j = 0; j < len; ++j) {
        route.push_back(static_cast<simnet::Turn>(rng.range(-7, 7)));
      }
      const auto c = circuit.send(src, route);
      const auto k = cut.send(src, route);
      if (c.delivered()) {
        EXPECT_TRUE(k.delivered());
        EXPECT_EQ(k.destination, c.destination);
      }
    }
  }
}

// ----------------------------------------------------------- end to end ----

TEST(PropertyEndToEnd, MapRouteReplayOnRandomNetworks) {
  common::Rng rng(606060);
  for (int trial = 0; trial < 8; ++trial) {
    common::Rng topo_rng(rng.next());
    const Topology t = topo::random_irregular(4 + trial, 5 + trial,
                                              trial / 2, topo_rng);
    const NodeId mapper_host = t.hosts().front();

    simnet::Network net(t);
    probe::ProbeEngine engine(net, mapper_host);
    mapper::MapperConfig config;
    config.search_depth = topo::search_depth(t, mapper_host);
    const auto result = mapper::BerkeleyMapper(engine, config).run();
    ASSERT_TRUE(topo::isomorphic(result.map, topo::core(t)))
        << "trial " << trial;

    const auto routes = routing::compute_updown_routes(result.map, {},
                                                       rng.next());
    EXPECT_TRUE(routing::updown_compliant(routes));
    EXPECT_TRUE(routing::analyze_routes(result.map, routes).deadlock_free);

    simnet::Network replay(result.map);
    for (const auto& [key, route] : routes.routes) {
      const auto r = replay.send(key.first, route.turns);
      ASSERT_TRUE(r.delivered()) << "trial " << trial;
      EXPECT_EQ(r.destination, key.second);
    }
  }
}

TEST(PropertyEndToEnd, MappingSurvivesRandomReconfigurations) {
  common::Rng rng(515151);
  Topology t = topo::star(4, 2);
  const NodeId mapper_host = t.hosts().front();
  for (int event = 0; event < 12; ++event) {
    // Random mutation that keeps the mapper attached and the graph with at
    // least two hosts.
    switch (rng.below(3)) {
      case 0: {  // add a host somewhere
        std::vector<NodeId> candidates;
        for (const NodeId s : t.switches()) {
          if (t.free_port(s)) {
            candidates.push_back(s);
          }
        }
        if (!candidates.empty()) {
          const NodeId h =
              t.add_host("r" + std::to_string(event));
          t.connect_any(h, rng.pick(candidates));
        }
        break;
      }
      case 1: {  // add a switch with two links
        std::vector<NodeId> candidates;
        for (const NodeId s : t.switches()) {
          if (t.free_port(s)) {
            candidates.push_back(s);
          }
        }
        if (candidates.size() >= 2) {
          const NodeId sw = t.add_switch();
          t.connect_any(sw, candidates[0]);
          t.connect_any(sw, candidates[1]);
        }
        break;
      }
      case 2: {  // remove a non-mapper host
        std::vector<NodeId> candidates;
        for (const NodeId h : t.hosts()) {
          if (h != mapper_host) {
            candidates.push_back(h);
          }
        }
        if (candidates.size() > 1) {
          t.remove_node(rng.pick(candidates));
        }
        break;
      }
      default:
        break;
    }
    if (t.num_hosts() < 2) {
      continue;
    }
    simnet::Network net(t);
    probe::ProbeEngine engine(net, mapper_host);
    mapper::MapperConfig config;
    config.search_depth = topo::search_depth(t, mapper_host);
    const auto result = mapper::BerkeleyMapper(engine, config).run();
    EXPECT_TRUE(topo::isomorphic(result.map, topo::core(t)))
        << "event " << event;
  }
}

TEST(PropertyEndToEnd, ProbeOrderNeverChangesTheMap) {
  common::Rng rng(121212);
  for (int trial = 0; trial < 5; ++trial) {
    common::Rng topo_rng(rng.next());
    const Topology t = topo::random_irregular(7, 7, 3, topo_rng);
    const NodeId mapper_host = t.hosts().front();
    topo::Topology maps[3];
    int i = 0;
    for (const auto order :
         {probe::ProbeOrder::kSwitchFirst, probe::ProbeOrder::kHostFirst,
          probe::ProbeOrder::kBoth}) {
      simnet::Network net(t);
      probe::ProbeOptions options;
      options.order = order;
      probe::ProbeEngine engine(net, mapper_host, options);
      mapper::MapperConfig config;
      config.search_depth = topo::search_depth(t, mapper_host);
      maps[i++] = mapper::BerkeleyMapper(engine, config).run().map;
    }
    EXPECT_TRUE(topo::isomorphic(maps[0], maps[1]));
    EXPECT_TRUE(topo::isomorphic(maps[0], maps[2]));
  }
}

TEST(PropertyEndToEnd, SeveredSubclusterAlwaysMapsToTheSurvivingCore) {
  // Theorem 1 under timed faults: attach a tail subcluster to a random
  // network over a single bridge wire and kill the bridge mid-session. No
  // matter where the death lands relative to the probe sequence, the
  // robust session must converge to a map isomorphic to the surviving
  // core N - F (the mapper's component with the tail gone).
  common::Rng rng(272727);
  for (int trial = 0; trial < 6; ++trial) {
    common::Rng topo_rng(rng.next());
    Topology t = topo::random_irregular(4 + trial % 3, 4 + trial % 4,
                                        trial % 3, topo_rng);
    const NodeId mapper_host = t.hosts().front();
    const NodeId tail_switch = t.add_switch("tail-s");
    const NodeId tail_host = t.add_host("tail-h");
    std::vector<NodeId> anchors;
    for (const NodeId s : t.switches()) {
      if (s != tail_switch && t.free_port(s)) {
        anchors.push_back(s);
      }
    }
    ASSERT_FALSE(anchors.empty());
    const topo::WireId bridge = t.connect_any(tail_switch, rng.pick(anchors));
    t.connect_any(tail_host, tail_switch);

    mapper::MapperConfig base;
    base.search_depth = topo::search_depth(t, mapper_host) + 2;

    // Measure an undisturbed pass to aim the fault into the session.
    common::SimTime pass_time;
    {
      simnet::Network quiet(t);
      probe::ProbeEngine probe_engine(quiet, mapper_host);
      pass_time = mapper::BerkeleyMapper(probe_engine, base).run().elapsed;
    }
    const auto fault_at = common::SimTime::from_us(
        pass_time.to_us() * (0.2 + 0.13 * trial));

    simnet::FaultSchedule schedule;
    schedule.link_down(bridge, fault_at);
    simnet::Network net(t);
    net.attach_faults(&schedule);
    probe::ProbeEngine engine(net, mapper_host);
    mapper::RobustConfig config;
    config.base = base;
    const auto result = mapper::RobustMapper(engine, config).run();

    ASSERT_TRUE(result.converged) << "trial " << trial;
    EXPECT_FALSE(result.map.find_host("tail-h").has_value())
        << "trial " << trial;
    Topology alive = schedule.surviving(t, result.elapsed);
    std::vector<int> component;
    topo::components(alive, component);
    for (const NodeId n : alive.nodes()) {
      if (component[n] != component[mapper_host]) {
        alive.remove_node(n);
      }
    }
    EXPECT_TRUE(topo::isomorphic(result.map, topo::core(alive)))
        << "trial " << trial;
  }
}

}  // namespace
}  // namespace sanmap
