// Tests for the probe engine: the response map R, probe ordering and
// counters, cost accounting, participation, and election yielding.
#include <gtest/gtest.h>

#include "probe/probe_engine.hpp"
#include "topology/generators.hpp"

namespace sanmap::probe {
namespace {

using simnet::HardwareExtensions;
using simnet::Network;
using simnet::Route;
using topo::NodeId;
using topo::Topology;

/// h0 -- s0 -- s1 -- h1 (same fixture as simnet_test).
struct Line {
  Topology topo;
  NodeId h0, s0, s1, h1;

  Line() {
    h0 = topo.add_host("h0");
    s0 = topo.add_switch();
    s1 = topo.add_switch();
    h1 = topo.add_host("h1");
    topo.connect(h0, 0, s0, 2);
    topo.connect(s0, 5, s1, 1);
    topo.connect(s1, 4, h1, 0);
  }
};

TEST(ProbeEngine, SwitchProbeDetectsSwitch) {
  Line line;
  Network net(line.topo);
  ProbeEngine engine(net, line.h0);
  // Empty prefix: is the adjacent node a switch?
  EXPECT_TRUE(engine.switch_probe(Route{}));
  // Prefix +3 reaches out of s0 toward s1: a switch.
  EXPECT_TRUE(engine.switch_probe(Route{3}));
  // Prefix +3,+3 exits s1 toward h1: a host, not a switch.
  EXPECT_FALSE(engine.switch_probe(Route{3, 3}));
  // Prefix +1: free port on s0.
  EXPECT_FALSE(engine.switch_probe(Route{1}));
}

TEST(ProbeEngine, HostProbeNamesTheHost) {
  Line line;
  Network net(line.topo);
  ProbeEngine engine(net, line.h0);
  EXPECT_EQ(engine.host_probe(Route{3, 3}), "h1");
  EXPECT_EQ(engine.host_probe(Route{3}), std::nullopt);   // stranded
  EXPECT_EQ(engine.host_probe(Route{1}), std::nullopt);   // no wire
}

TEST(ProbeEngine, CombinedProbeResponses) {
  Line line;
  Network net(line.topo);
  ProbeEngine engine(net, line.h0);
  EXPECT_EQ(engine.probe(Route{3}).kind, ResponseKind::kSwitch);
  const Response host = engine.probe(Route{3, 3});
  EXPECT_EQ(host.kind, ResponseKind::kHost);
  EXPECT_EQ(host.host_name, "h1");
  EXPECT_EQ(engine.probe(Route{1}).kind, ResponseKind::kNothing);
}

TEST(ProbeEngine, SwitchFirstOrderCounters) {
  Line line;
  Network net(line.topo);
  ProbeEngine engine(net, line.h0);  // default kSwitchFirst
  engine.probe(Route{3});     // switch hit: 1 switch probe, no host probe
  engine.probe(Route{3, 3});  // switch miss + host hit
  engine.probe(Route{1});     // switch miss + host miss
  const ProbeCounters& c = engine.counters();
  EXPECT_EQ(c.switch_probes, 3u);
  EXPECT_EQ(c.switch_hits, 1u);
  EXPECT_EQ(c.host_probes, 2u);
  EXPECT_EQ(c.host_hits, 1u);
  EXPECT_EQ(c.total(), 5u);
  EXPECT_DOUBLE_EQ(c.host_ratio(), 0.5);
  EXPECT_NEAR(c.switch_ratio(), 1.0 / 3.0, 1e-12);
}

TEST(ProbeEngine, HostFirstOrderCounters) {
  Line line;
  Network net(line.topo);
  ProbeOptions options;
  options.order = ProbeOrder::kHostFirst;
  ProbeEngine engine(net, line.h0, options);
  engine.probe(Route{3});     // host miss + switch hit
  engine.probe(Route{3, 3});  // host hit only
  const ProbeCounters& c = engine.counters();
  EXPECT_EQ(c.host_probes, 2u);
  EXPECT_EQ(c.switch_probes, 1u);
}

TEST(ProbeEngine, BothOrderSendsEverything) {
  Line line;
  Network net(line.topo);
  ProbeOptions options;
  options.order = ProbeOrder::kBoth;
  ProbeEngine engine(net, line.h0, options);
  engine.probe(Route{3});
  engine.probe(Route{3, 3});
  EXPECT_EQ(engine.counters().host_probes, 2u);
  EXPECT_EQ(engine.counters().switch_probes, 2u);
}

TEST(ProbeEngine, TimeoutsCostMoreThanResponses) {
  Line line;
  Network net(line.topo);
  ProbeEngine hit_engine(net, line.h0);
  hit_engine.switch_probe(Route{3});
  const auto hit_cost = hit_engine.elapsed();

  ProbeEngine miss_engine(net, line.h0);
  miss_engine.switch_probe(Route{1});
  const auto miss_cost = miss_engine.elapsed();
  EXPECT_LT(hit_cost, miss_cost);
}

TEST(ProbeEngine, HostProbeRoundTripCostsBothEnds) {
  Line line;
  Network net(line.topo);
  ProbeEngine engine(net, line.h0);
  engine.host_probe(Route{3, 3});
  // At least two software overheads on each side.
  const auto& cost = net.cost();
  EXPECT_GE(engine.elapsed().to_ns(),
            (cost.send_overhead * 2 + cost.receive_overhead * 2).to_ns());
}

TEST(ProbeEngine, NonParticipatingHostDoesNotAnswer) {
  Line line;
  Network net(line.topo);
  ProbeOptions options;
  options.participants = {line.h0};  // only the mapper itself
  ProbeEngine engine(net, line.h0, options);
  EXPECT_EQ(engine.host_probe(Route{3, 3}), std::nullopt);
  // Switch probes are answered by hardware, not daemons: unaffected.
  EXPECT_TRUE(engine.switch_probe(Route{3}));
}

TEST(ProbeEngine, MapperMustParticipate) {
  Line line;
  Network net(line.topo);
  ProbeOptions options;
  options.participants = {line.h1};
  EXPECT_THROW(ProbeEngine(net, line.h0, options), common::CheckFailure);
}

TEST(ProbeEngine, ElectionContendersYieldAfterFirstProbe) {
  Line line;
  Network net(line.topo);
  ProbeOptions options;
  options.election = true;
  ProbeEngine engine(net, line.h0, options);
  // The first host-probe to the contender is delayed by arbitration but
  // still answered; the second is a normal round trip.
  const auto before_first = engine.elapsed();
  EXPECT_EQ(engine.host_probe(Route{3, 3}), "h1");
  const auto first_cost = engine.elapsed() - before_first;
  const auto before_second = engine.elapsed();
  EXPECT_EQ(engine.host_probe(Route{3, 3}), "h1");
  const auto second_cost = engine.elapsed() - before_second;
  EXPECT_EQ((first_cost - second_cost).to_ns(),
            options.election_arbitration.to_ns());
}

TEST(ProbeEngine, ElectionChargesAStartOffset) {
  Line line;
  Network net(line.topo);
  ProbeOptions options;
  options.election = true;
  ProbeEngine election(net, line.h0, options);
  ProbeEngine master(net, line.h0);
  EXPECT_GT(election.elapsed().to_ns(), 0);
  EXPECT_EQ(master.elapsed().to_ns(), 0);
}

TEST(ProbeEngine, ResetClearsPassStateOnly) {
  Line line;
  Network net(line.topo);
  ProbeEngine engine(net, line.h0);
  engine.host_probe(Route{3, 3});
  engine.reset();
  EXPECT_EQ(engine.counters().total(), 0u);
  EXPECT_EQ(engine.elapsed().to_ns(), 0);
  EXPECT_TRUE(engine.transcript().empty());
}

// Regression: reset() used to re-arm every election contender and re-draw
// the start offset, so a multi-pass session (RobustMapper re-running
// BerkeleyMapper, whose run() resets the engine) re-paid arbitration on
// every pass. Contenders are physical daemons — once yielded, they stay
// yielded for the lifetime of the engine.
TEST(ProbeEngine, ResetDoesNotRearmElectionContenders) {
  Line line;
  Network net(line.topo);
  ProbeOptions options;
  options.election = true;
  ProbeEngine engine(net, line.h0, options);
  engine.host_probe(Route{3, 3});  // h1 yields: arbitration paid once
  engine.reset();
  // Pass 2 starts at a clean clock: no start offset re-charged either.
  EXPECT_EQ(engine.elapsed().to_ns(), 0);
  EXPECT_EQ(engine.host_probe(Route{3, 3}), "h1");
  const auto pass2_cost = engine.elapsed();

  // A plain (master-mode) engine's round trip is the no-arbitration cost.
  ProbeEngine master(net, line.h0);
  master.host_probe(Route{3, 3});
  EXPECT_EQ(pass2_cost.to_ns(), master.elapsed().to_ns());
}

// Regression: a probe that reaches a non-participating host used to be
// recorded as answered=false with an empty response, so transcript_replays
// (which replays against a network where every host answers) rejected
// perfectly valid sessions. The transcript records the network-level
// outcome: the route does reach that host.
TEST(ProbeEngine, NonParticipantTranscriptReplaysAgainstFullNetwork) {
  Line line;
  HardwareExtensions ext;
  ext.hosts_answer_early_hits = true;
  Network net(line.topo, simnet::CollisionModel::kCutThrough, {}, {}, 1, ext);
  ProbeOptions options;
  options.participants = {line.h0};  // h1 has no daemon
  options.record_transcript = true;
  ProbeEngine engine(net, line.h0, options);
  EXPECT_EQ(engine.host_probe(Route{3, 3}), std::nullopt);
  EXPECT_EQ(engine.wild_probe(Route{3, 3}), std::nullopt);
  ASSERT_EQ(engine.transcript().size(), 2u);
  for (const TranscriptEntry& entry : engine.transcript()) {
    EXPECT_TRUE(entry.answered);
    EXPECT_EQ(entry.response, "h1");
  }
  // The documented contract: replaying against the same quiescent network
  // with all hosts answering reproduces every entry.
  EXPECT_TRUE(transcript_replays(engine.transcript(), net, line.h0));
}

TEST(ProbeEngine, TimedOutWildProbeTranscriptReplays) {
  Line line;
  HardwareExtensions ext;
  ext.hosts_answer_early_hits = true;
  Network net(line.topo, simnet::CollisionModel::kCutThrough, {}, {}, 1, ext);
  ProbeOptions options;
  options.record_transcript = true;
  ProbeEngine engine(net, line.h0, options);
  // Route{3} strands inside the fabric: no host is ever reached, so the
  // entry really is unanswered — and replays as such.
  EXPECT_EQ(engine.wild_probe(Route{3}), std::nullopt);
  ASSERT_EQ(engine.transcript().size(), 1u);
  EXPECT_FALSE(engine.transcript().front().answered);
  EXPECT_TRUE(transcript_replays(engine.transcript(), net, line.h0));
}

TEST(ProbeEngine, ChargeAddsMapperWork) {
  Line line;
  Network net(line.topo);
  ProbeEngine engine(net, line.h0);
  engine.charge(common::SimTime::ms(5));
  EXPECT_EQ(engine.elapsed().to_ns(), common::SimTime::ms(5).to_ns());
}

TEST(ProbeEngine, ResponseKindNames) {
  EXPECT_STREQ(to_string(ResponseKind::kSwitch), "switch");
  EXPECT_STREQ(to_string(ResponseKind::kHost), "host");
  EXPECT_STREQ(to_string(ResponseKind::kNothing), "nothing");
}

}  // namespace
}  // namespace sanmap::probe
