// Tests for the proof-form labeled mapper, and the cross-check between the
// executable specification (§3.1) and the production algorithm (§3.3):
// both must produce graphs isomorphic to N - F, hence to each other.
#include <gtest/gtest.h>

#include "mapper/berkeley_mapper.hpp"
#include "mapper/labeled_mapper.hpp"
#include "probe/probe_engine.hpp"
#include "simnet/network.hpp"
#include "topology/algorithms.hpp"
#include "topology/generators.hpp"
#include "topology/isomorphism.hpp"

namespace sanmap::mapper {
namespace {

using probe::ProbeEngine;
using simnet::CollisionModel;
using simnet::Network;
using topo::NodeId;
using topo::Topology;

MapResult run_labeled(const Topology& t, NodeId mapper,
                      CollisionModel collision) {
  Network net(t, collision);
  ProbeEngine engine(net, mapper);
  MapperConfig config;
  config.search_depth = topo::search_depth(t, mapper);
  return LabeledMapper(engine, config).run();
}

MapResult run_production(const Topology& t, NodeId mapper,
                         CollisionModel collision) {
  Network net(t, collision);
  ProbeEngine engine(net, mapper);
  MapperConfig config;
  config.search_depth = topo::search_depth(t, mapper);
  return BerkeleyMapper(engine, config).run();
}

TEST(LabeledMapper, MapsTheLineNetwork) {
  Topology t;
  const NodeId h0 = t.add_host("h0");
  const NodeId s0 = t.add_switch();
  const NodeId s1 = t.add_switch();
  const NodeId h1 = t.add_host("h1");
  t.connect(h0, 0, s0, 2);
  t.connect(s0, 5, s1, 1);
  t.connect(s1, 4, h1, 0);
  const auto result = run_labeled(t, h0, CollisionModel::kCutThrough);
  EXPECT_TRUE(topo::isomorphic(result.map, topo::core(t)));
}

TEST(LabeledMapper, MapsAStarUnderBothCollisionModels) {
  const Topology t = topo::star(3, 2);
  for (const auto collision :
       {CollisionModel::kCircuit, CollisionModel::kCutThrough}) {
    const auto result = run_labeled(t, t.hosts().front(), collision);
    EXPECT_TRUE(topo::isomorphic(result.map, topo::core(t)))
        << to_string(collision);
  }
}

TEST(LabeledMapper, MapsARingWithReplicates) {
  // A ring forces replicates: both directions around reach every switch.
  const Topology t = topo::ring(4, 1);
  const auto result = run_labeled(t, t.hosts().front(),
                                  CollisionModel::kCutThrough);
  EXPECT_TRUE(topo::isomorphic(result.map, topo::core(t)));
  EXPECT_GT(result.merges, 0u);
}

TEST(LabeledMapper, PrunesTheSeparatedSet) {
  common::Rng rng(5);
  const Topology t = topo::with_switch_tail(3, 4, 2, rng);
  const auto result = run_labeled(t, t.hosts().front(),
                                  CollisionModel::kCircuit);
  EXPECT_TRUE(topo::isomorphic(result.map, topo::core(t)));
  EXPECT_GT(result.pruned, 0u);
}

TEST(LabeledMapper, UsesMoreProbesThanProduction) {
  // The naive proof form explores every replicate fully; the production
  // algorithm's interleaved merging is strictly cheaper.
  const Topology t = topo::star(3, 2);
  const NodeId mapper = t.hosts().front();
  const auto naive = run_labeled(t, mapper, CollisionModel::kCutThrough);
  const auto fast = run_production(t, mapper, CollisionModel::kCutThrough);
  EXPECT_TRUE(topo::isomorphic(naive.map, fast.map));
  EXPECT_GE(naive.probes.total(), fast.probes.total());
}

struct CrossCase {
  std::uint64_t seed;
  int switches;
  int hosts;
  int extra_links;
};

class CrossCheckTest : public ::testing::TestWithParam<CrossCase> {};

TEST_P(CrossCheckTest, SpecAndProductionAgree) {
  const CrossCase& param = GetParam();
  common::Rng rng(param.seed);
  const Topology t = topo::random_irregular(param.switches, param.hosts,
                                            param.extra_links, rng);
  for (const auto collision :
       {CollisionModel::kCircuit, CollisionModel::kCutThrough}) {
    const auto spec = run_labeled(t, t.hosts().front(), collision);
    const auto prod = run_production(t, t.hosts().front(), collision);
    // Theorem 1: both isomorphic to core(N), hence to each other.
    EXPECT_TRUE(topo::isomorphic(spec.map, topo::core(t)))
        << "labeled, " << to_string(collision) << ", seed " << param.seed;
    EXPECT_TRUE(topo::isomorphic(prod.map, spec.map))
        << "production vs labeled, " << to_string(collision) << ", seed "
        << param.seed;
  }
}

std::vector<CrossCase> cross_cases() {
  std::vector<CrossCase> cases;
  std::uint64_t seed = 42;
  for (int switches : {1, 2, 3, 4, 5}) {
    for (int extra : {0, 1, 2}) {
      cases.push_back(CrossCase{seed++, switches, 3, extra});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, CrossCheckTest,
                         ::testing::ValuesIn(cross_cases()),
                         [](const auto& param_info) {
                           const CrossCase& c = param_info.param;
                           return "s" + std::to_string(c.switches) + "_x" +
                                  std::to_string(c.extra_links) + "_seed" +
                                  std::to_string(c.seed);
                         });

}  // namespace
}  // namespace sanmap::mapper
