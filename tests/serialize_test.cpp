// Tests for the text serialization format and Graphviz export.
#include <gtest/gtest.h>

#include <stdexcept>

#include "common/rng.hpp"
#include "topology/generators.hpp"
#include "topology/isomorphism.hpp"
#include "topology/serialize.hpp"

namespace sanmap::topo {
namespace {

TEST(Serialize, RoundTripTiny) {
  Topology t;
  const NodeId h = t.add_host("alpha");
  const NodeId s = t.add_switch("sw");
  t.connect(h, 0, s, 5);
  const Topology u = from_text(to_text(t));
  EXPECT_TRUE(t.structurally_equal(u));
}

TEST(Serialize, RoundTripNowCluster) {
  const Topology t = now_cluster();
  const Topology u = from_text(to_text(t));
  EXPECT_EQ(u.num_hosts(), t.num_hosts());
  EXPECT_EQ(u.num_switches(), t.num_switches());
  EXPECT_EQ(u.num_wires(), t.num_wires());
  EXPECT_TRUE(t.structurally_equal(u));
}

TEST(Serialize, RoundTripRandom) {
  common::Rng rng(77);
  for (int i = 0; i < 5; ++i) {
    const Topology t = random_irregular(12, 10, 6, rng);
    EXPECT_TRUE(t.structurally_equal(from_text(to_text(t))));
  }
}

TEST(Serialize, CommentsAndBlankLinesIgnored) {
  const Topology t = from_text(
      "# a comment\n"
      "\n"
      "host a\n"
      "switch s\n"
      "# another\n"
      "wire a 0 s 3\n");
  EXPECT_EQ(t.num_hosts(), 1u);
  EXPECT_EQ(t.num_wires(), 1u);
}

TEST(Serialize, UnknownKeywordFails) {
  EXPECT_THROW(from_text("frobnicate x\n"), std::runtime_error);
}

TEST(Serialize, UnknownNodeInWireFails) {
  EXPECT_THROW(from_text("host a\nwire a 0 ghost 1\n"), std::runtime_error);
}

TEST(Serialize, DuplicateNameFails) {
  EXPECT_THROW(from_text("host a\nswitch a\n"), std::runtime_error);
}

TEST(Serialize, MalformedWireFails) {
  EXPECT_THROW(from_text("host a\nswitch s\nwire a 0 s\n"),
               std::runtime_error);
}

TEST(Serialize, PortConflictReportsLineNumber) {
  try {
    from_text("host a\nhost b\nswitch s\nwire a 0 s 0\nwire b 0 s 0\n");
    FAIL() << "expected parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 5"), std::string::npos);
  }
}

TEST(Serialize, SelfLoopRoundTrips) {
  Topology t;
  const NodeId s = t.add_switch("s");
  t.connect(s, 1, s, 6);
  EXPECT_TRUE(t.structurally_equal(from_text(to_text(t))));
}

TEST(Dot, ContainsNodesAndEdges) {
  Topology t;
  const NodeId h = t.add_host("myhost");
  const NodeId s = t.add_switch("mysw");
  t.connect(h, 0, s, 2);
  const std::string dot = to_dot(t);
  EXPECT_NE(dot.find("graph sanmap"), std::string::npos);
  EXPECT_NE(dot.find("myhost"), std::string::npos);
  EXPECT_NE(dot.find("mysw"), std::string::npos);
  EXPECT_NE(dot.find("--"), std::string::npos);
  EXPECT_NE(dot.find(":p2"), std::string::npos);  // switch port anchor
}

TEST(Dot, HostsHaveNoPortAnchors) {
  Topology t;
  const NodeId h = t.add_host("hh");
  const NodeId s = t.add_switch("ss");
  t.connect(h, 0, s, 0);
  const std::string dot = to_dot(t);
  // The host endpoint is plain nN, not nN:pK.
  EXPECT_EQ(dot.find("n0:p"), std::string::npos);
}

TEST(Dot, ReadDotRoundTripsOurOwnDialect) {
  // sanmap lint accepts the repository's paper-figure .dot exports; the
  // reader must reconstruct the exact structure to_dot rendered.
  const Topology t = now_cluster();
  const Topology u = dot_from_text(to_dot(t));
  EXPECT_EQ(u.num_hosts(), t.num_hosts());
  EXPECT_EQ(u.num_switches(), t.num_switches());
  EXPECT_EQ(u.num_wires(), t.num_wires());
  // to_dot renders hosts before switches, so node ids are renumbered:
  // the round trip preserves the graph, not the id assignment.
  EXPECT_TRUE(isomorphic(t, u));
}

TEST(Dot, ReadDotRejectsForeignStatementsWithALineNumber) {
  try {
    dot_from_text("graph g {\n  n0 -> n1;\n}\n");  // digraph edge syntax
    FAIL() << "expected a parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos)
        << e.what();
  }
}

}  // namespace
}  // namespace sanmap::topo
