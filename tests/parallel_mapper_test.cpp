// Tests for §6 parallel mapping: partial-map merging and the multi-mapper
// pipeline.
#include <gtest/gtest.h>

#include "mapper/berkeley_mapper.hpp"
#include "mapper/parallel_mapper.hpp"
#include "mapper/partial_merge.hpp"
#include "probe/probe_engine.hpp"
#include "simnet/network.hpp"
#include "topology/algorithms.hpp"
#include "topology/generators.hpp"
#include "topology/isomorphism.hpp"

namespace sanmap::mapper {
namespace {

using topo::NodeId;
using topo::Topology;

/// Builds the ground-truth partial map covering node set `keep` of `t`
/// (nodes outside are dropped, as are wires touching them), with each
/// switch's ports shifted by a per-switch offset to mimic a mapper's
/// offset-oblivious output.
Topology slice(const Topology& t, const std::vector<NodeId>& keep,
               common::Rng& rng) {
  Topology out;
  std::vector<NodeId> remap(t.node_capacity(), topo::kInvalidNode);
  std::vector<topo::Port> shift(t.node_capacity(), 0);
  for (const NodeId n : keep) {
    if (t.is_host(n)) {
      remap[n] = out.add_host(t.name(n));
    } else {
      remap[n] = out.add_switch();
      // Feasible shift range given this slice's occupied ports.
      topo::Port lo = topo::kSwitchPorts;
      topo::Port hi = -1;
      for (topo::Port p = 0; p < t.port_count(n); ++p) {
        const auto far = t.peer(n, p);
        if (far && remap.size() > far->node) {
          lo = std::min(lo, p);
          hi = std::max(hi, p);
        }
      }
      if (hi >= 0) {
        shift[n] = static_cast<topo::Port>(
            rng.range(-lo, topo::kSwitchPorts - 1 - hi));
      }
    }
  }
  for (const topo::WireId w : t.wires()) {
    const topo::Wire& wire = t.wire(w);
    if (remap[wire.a.node] == topo::kInvalidNode ||
        remap[wire.b.node] == topo::kInvalidNode) {
      continue;
    }
    out.connect(remap[wire.a.node], wire.a.port + shift[wire.a.node],
                remap[wire.b.node], wire.b.port + shift[wire.b.node]);
  }
  return out;
}

TEST(PartialMerge, TwoOverlappingSlicesFuseExactly) {
  const Topology t = topo::now_subcluster(topo::Subcluster::kC, "C");
  common::Rng rng(5);
  // Slice by leaf parity, both including all mid/root switches and their
  // hosts — a generous overlap.
  std::vector<NodeId> left;
  std::vector<NodeId> right;
  for (const NodeId n : t.nodes()) {
    const std::string& name = t.name(n);
    const bool is_leafish = name.find("leaf") != std::string::npos;
    if (!is_leafish && t.is_switch(n)) {
      left.push_back(n);
      right.push_back(n);
      continue;
    }
    // Hosts go with their leaf; leaves split by index parity.
    NodeId leaf = n;
    if (t.is_host(n)) {
      const auto far = t.peer(n, 0);
      ASSERT_TRUE(far.has_value());
      leaf = far->node;
    }
    const std::string& leaf_name = t.name(leaf);
    if (leaf_name.find("leaf") == std::string::npos) {
      left.push_back(n);  // the utility host on a root
      right.push_back(n);
      continue;
    }
    const int index = leaf_name.back() - '0';
    (index % 2 == 0 ? left : right).push_back(n);
  }
  const Topology a = slice(t, left, rng);
  const Topology b = slice(t, right, rng);
  EXPECT_LT(a.num_nodes(), t.num_nodes());
  EXPECT_LT(b.num_nodes(), t.num_nodes());

  PartialMergeStats stats;
  const Topology merged = merge_partial_maps({a, b}, &stats);
  EXPECT_TRUE(topo::isomorphic(merged, t));
  EXPECT_GT(stats.merges, 0u);
}

TEST(PartialMerge, SinglePartIsIdentity) {
  const Topology t = topo::star(3, 2);
  common::Rng rng(9);
  const Topology part = slice(t, t.nodes(), rng);
  EXPECT_TRUE(topo::isomorphic(merge_partial_maps({part}), t));
}

TEST(PartialMerge, DisjointRegionsStaySeparate) {
  // Two slices sharing no hosts: the merge cannot identify their shared
  // switches and faithfully keeps both copies.
  Topology t;
  const NodeId s0 = t.add_switch();
  const NodeId s1 = t.add_switch();
  t.connect(s0, 0, s1, 0);
  const NodeId ha = t.add_host("a");
  t.connect(ha, 0, s0, 1);
  const NodeId hb = t.add_host("b");
  t.connect(hb, 0, s1, 1);
  common::Rng rng(3);
  const Topology left = slice(t, {s0, s1, ha}, rng);
  const Topology right = slice(t, {s0, s1, hb}, rng);
  const Topology merged = merge_partial_maps({left, right});
  // Both parts kept their own copies of the two switches.
  EXPECT_EQ(merged.num_hosts(), 2u);
  EXPECT_EQ(merged.num_switches(), 4u);
}

TEST(PartialMerge, ContradictoryPartsRejected) {
  // The same host on two different switches (stale vs fresh view of a
  // recabled network) must be flagged, not silently merged.
  Topology stale;
  {
    const NodeId s0 = stale.add_switch();
    const NodeId s1 = stale.add_switch();
    stale.connect(s0, 0, s1, 0);
    const NodeId h = stale.add_host("h");
    stale.connect(h, 0, s0, 1);
    const NodeId anchor = stale.add_host("anchor0");
    stale.connect(anchor, 0, s0, 2);
    const NodeId anchor1 = stale.add_host("anchor1");
    stale.connect(anchor1, 0, s1, 2);
  }
  Topology fresh;
  {
    const NodeId s0 = fresh.add_switch();
    const NodeId s1 = fresh.add_switch();
    fresh.connect(s0, 0, s1, 0);
    const NodeId h = fresh.add_host("h");
    fresh.connect(h, 0, s1, 1);  // moved to the other switch
    const NodeId anchor = fresh.add_host("anchor0");
    fresh.connect(anchor, 0, s0, 2);
    const NodeId anchor1 = fresh.add_host("anchor1");
    fresh.connect(anchor1, 0, s1, 2);
  }
  EXPECT_THROW((void)merge_partial_maps({stale, fresh}),
               common::CheckFailure);
}

TEST(PartialMerge, BoundarySwitchSeenByThreeRegionsFusesToOne) {
  // A hub switch on the boundary of three regions: every part observes it
  // (anchored by the shared hub host), so the cascade must collapse the
  // three copies into one — the n-way case the federation boundary
  // resolver leans on, not just the pairwise merge.
  Topology t;
  const NodeId hub = t.add_switch("hub");
  const NodeId hub_host = t.add_host("hub-host");
  t.connect(hub_host, 0, hub, 0);
  std::vector<NodeId> leaves;
  std::vector<NodeId> leaf_hosts;
  for (int i = 0; i < 3; ++i) {
    const NodeId leaf = t.add_switch("leaf" + std::to_string(i));
    t.connect(leaf, 0, hub, static_cast<topo::Port>(1 + i));
    leaves.push_back(leaf);
    leaf_hosts.push_back(t.add_host("h" + std::to_string(i)));
    t.connect(leaf_hosts.back(), 0, leaf, 1);
  }

  common::Rng rng(11);
  std::vector<Topology> parts;
  for (int i = 0; i < 3; ++i) {
    parts.push_back(
        slice(t, {hub, hub_host, leaves[static_cast<std::size_t>(i)],
                  leaf_hosts[static_cast<std::size_t>(i)]},
              rng));
  }
  PartialMergeStats stats;
  const Topology merged = merge_partial_maps(parts, &stats);
  EXPECT_TRUE(topo::isomorphic(merged, t))
      << merged.num_hosts() << "h/" << merged.num_switches() << "s";
  EXPECT_EQ(merged.num_switches(), 4u);  // three hub copies became one
  EXPECT_GT(stats.merges, 0u);
}

TEST(PartialMerge, RegionWhoseEntireMapIsBoundaryDissolvesIntoNeighbors) {
  // A middle region that owns nothing: every switch it mapped is also
  // mapped by a neighbor. The merge must dissolve it completely instead of
  // duplicating the shared switches.
  Topology t;
  const NodeId s0 = t.add_switch("s0");
  const NodeId s1 = t.add_switch("s1");
  t.connect(s0, 0, s1, 0);
  const NodeId h0 = t.add_host("h0");
  t.connect(h0, 0, s0, 1);
  const NodeId h1 = t.add_host("h1");
  t.connect(h1, 0, s1, 1);

  common::Rng rng(17);
  const Topology left = slice(t, {s0, h0, s1}, rng);
  const Topology middle = slice(t, {s0, s1, h0, h1}, rng);  // all boundary
  const Topology right = slice(t, {s1, h1, s0}, rng);
  PartialMergeStats stats;
  const Topology merged = merge_partial_maps({left, middle, right}, &stats);
  EXPECT_TRUE(topo::isomorphic(merged, t));
  EXPECT_EQ(merged.num_switches(), 2u);
  EXPECT_GT(stats.merges, 0u);
}

TEST(PartialMerge, EmptyPartIsIdentityElement) {
  // A region that mapped nothing (empty fabric slice, exhausted budget)
  // contributes no evidence and must not perturb the merge.
  const Topology t = topo::star(3, 2);
  common::Rng rng(23);
  const Topology part = slice(t, t.nodes(), rng);
  PartialMergeStats stats;
  const Topology merged =
      merge_partial_maps({Topology{}, part, Topology{}}, &stats);
  EXPECT_TRUE(topo::isomorphic(merged, t));
  EXPECT_EQ(stats.loaded_vertices, part.num_nodes());
}

TEST(ParallelMapper, ThreeMappersCoverTheNow) {
  const Topology t = topo::now_cluster();
  simnet::Network net(t);
  ParallelConfig config;
  // One mapper per subcluster (the utility hosts) plus two leaf hosts for
  // extra overlap.
  config.mappers = {*t.find_host("C.util"), *t.find_host("A.util"),
                    *t.find_host("B.util"), *t.find_host("C.h0"),
                    *t.find_host("B.h17")};
  config.local_depth = 8;
  const auto result = ParallelMapper(net, config).run();
  EXPECT_TRUE(topo::isomorphic(result.map, topo::core(t)))
      << result.map.num_hosts() << "h/" << result.map.num_switches() << "s/"
      << result.map.num_wires() << "w";
  EXPECT_EQ(result.locals.size(), 5u);
}

TEST(ParallelMapper, ParallelPhaseIsFasterOnALargeDiameterNetwork) {
  // Locality pays when local balls are genuinely smaller than the network:
  // on the NOW (diameter 8) a depth-8 "local" ball is the whole fabric and
  // parallelism saves nothing, but on a 30-switch ring (diameter ~16),
  // ten spaced mappers with small balls beat one global mapper soundly.
  const Topology t = topo::ring(30, 1);
  const NodeId solo_host = t.hosts().front();

  simnet::Network net(t);
  probe::ProbeEngine engine(net, solo_host);
  MapperConfig solo_config;
  solo_config.search_depth = topo::search_depth(t, solo_host);
  const auto solo = BerkeleyMapper(engine, solo_config).run();

  simnet::Network net2(t);
  ParallelConfig config;
  const auto hosts = t.hosts();
  for (std::size_t i = 0; i < hosts.size(); i += 3) {
    config.mappers.push_back(hosts[i]);
  }
  config.local_depth = 6;
  const auto parallel = ParallelMapper(net2, config).run();

  EXPECT_TRUE(topo::isomorphic(parallel.map, solo.map));
  // The parallel phase's wall clock (max of locals + merge) beats the solo
  // mapper even though total network load is higher.
  EXPECT_LT(parallel.elapsed, solo.elapsed);
}

TEST(ParallelMapper, InsufficientDepthMissesTheMiddle) {
  const Topology t = topo::now_cluster();
  simnet::Network net(t);
  ParallelConfig config;
  config.mappers = {*t.find_host("C.util"), *t.find_host("A.util"),
                    *t.find_host("B.util")};
  config.local_depth = 1;  // balls far too small to cover the fabric
  const auto result = ParallelMapper(net, config).run();
  EXPECT_LT(result.map.num_nodes(), t.num_nodes());
}

TEST(ParallelMapper, SingleMapperEqualsBerkeley) {
  const Topology t = topo::star(4, 2);
  const NodeId mapper_host = t.hosts().front();
  simnet::Network net(t);
  ParallelConfig config;
  config.mappers = {mapper_host};
  config.local_depth = topo::search_depth(t, mapper_host);
  const auto result = ParallelMapper(net, config).run();
  EXPECT_TRUE(topo::isomorphic(result.map, topo::core(t)));
}

}  // namespace
}  // namespace sanmap::mapper
