// The map service layer: versioned catalog, concurrent query engine,
// refresh loop, and the binary snapshot codec.
//
//  * MapSnapshot — building bundles map, routes, and the deadlock verdict;
//  * MapCatalog — monotonic epochs, unsafe-snapshot refusal, stale-epoch
//    compare-and-publish, bounded history;
//  * RouteQueryEngine — answers match the router, batches fan out over the
//    thread pool, misses are counted;
//  * concurrency — readers race a publisher (and a live RefreshLoop) and
//    must only ever observe fully published epochs. These tests are the
//    TSan CI job's primary target;
//  * RefreshLoop — quiet ticks observe, a link death triggers remap +
//    verify + redistribute + epoch swap;
//  * codec — round trip, checksum/truncation/magic failures, file I/O.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <thread>

#include "analysis/certificates.hpp"
#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "routing/route_health.hpp"
#include "service/map_catalog.hpp"
#include "service/query_engine.hpp"
#include "service/refresh_loop.hpp"
#include "service/snapshot_codec.hpp"
#include "simnet/fault_schedule.hpp"
#include "simnet/network.hpp"
#include "topology/generators.hpp"
#include "topology/isomorphism.hpp"

namespace sanmap::service {
namespace {

using common::SimTime;
using topo::NodeId;
using topo::Topology;

MapSnapshot make_snapshot(const Topology& t, std::uint64_t seed = 1) {
  SnapshotOptions options;
  options.route_seed = seed;
  options.source = "test";
  return build_snapshot(t, options, SimTime{});
}

/// A switch-to-switch wire of `t` (redundant on a torus: killing it leaves
/// every host reachable).
topo::WireId switch_wire(const Topology& t) {
  for (const topo::WireId w : t.wires()) {
    const topo::Wire& wire = t.wire(w);
    if (t.is_switch(wire.a.node) && t.is_switch(wire.b.node)) {
      return w;
    }
  }
  return t.wires().front();
}

// --------------------------------------------------------------- snapshot --

TEST(Snapshot, BuildBundlesRoutesWithTheSafetyVerdict) {
  const Topology t = topo::torus(3, 3, 1);
  const MapSnapshot snap = make_snapshot(t);
  EXPECT_EQ(snap.epoch, 0u);  // unassigned until published
  EXPECT_TRUE(snap.deadlock_free);
  EXPECT_TRUE(snap.compliant);
  EXPECT_EQ(snap.routes.routes.size(), 9u * 8u);
  EXPECT_GT(snap.channels, 0u);
  EXPECT_GT(snap.dependencies, 0u);
  EXPECT_GT(snap.mean_hops, 0.0);
  EXPECT_GE(snap.max_hops, 2);
}

TEST(Snapshot, RootOverrideResolvesBySwitchName) {
  const Topology t = topo::torus(3, 3, 1);
  const std::string root_name = t.name(t.switches().back());
  SnapshotOptions options;
  options.root_name = root_name;
  const MapSnapshot snap = build_snapshot(t, options, SimTime{});
  EXPECT_EQ(snap.map.name(snap.routes.orientation.root()), root_name);
}

TEST(Snapshot, EmptyRouteSetIsValid) {
  // One switch, one host: no host pairs. Trivially deadlock-free.
  Topology t;
  const NodeId s = t.add_switch();
  const NodeId h = t.add_host("only");
  t.connect(h, 0, s, 0);
  const MapSnapshot snap = make_snapshot(t);
  EXPECT_TRUE(snap.deadlock_free);
  EXPECT_TRUE(snap.routes.routes.empty());
  EXPECT_EQ(snap.mean_hops, 0.0);
}

// ---------------------------------------------------------------- catalog --

TEST(MapCatalog, PublishAssignsMonotonicEpochs) {
  const Topology t = topo::torus(3, 3, 1);
  MapCatalog catalog;
  EXPECT_EQ(catalog.epoch(), 0u);
  EXPECT_EQ(catalog.current(), nullptr);

  const auto first = catalog.publish(make_snapshot(t, 1));
  ASSERT_TRUE(first.published());
  EXPECT_EQ(first.epoch, 1u);
  const auto second = catalog.publish(make_snapshot(t, 2));
  ASSERT_TRUE(second.published());
  EXPECT_EQ(second.epoch, 2u);

  const SnapshotPtr current = catalog.current();
  ASSERT_NE(current, nullptr);
  EXPECT_EQ(current->epoch, 2u);
  EXPECT_EQ(current->options.route_seed, 2u);
  EXPECT_EQ(catalog.stats().published, 2u);
}

TEST(MapCatalog, RefusesUnsafeSnapshots) {
  const Topology t = topo::torus(3, 3, 1);
  MapCatalog catalog;
  catalog.publish(make_snapshot(t));

  MapSnapshot unsafe = make_snapshot(t);
  unsafe.deadlock_free = false;  // simulate a failed verification
  const auto outcome = catalog.publish(std::move(unsafe));
  EXPECT_EQ(outcome.status, MapCatalog::PublishStatus::kRejectedUnsafe);
  EXPECT_EQ(outcome.epoch, 1u);          // the surviving epoch
  EXPECT_EQ(catalog.epoch(), 1u);        // current unchanged
  EXPECT_EQ(catalog.stats().rejected_unsafe, 1u);
}

TEST(MapCatalog, IncrementalGatePublishesAndRefusesLikeFull) {
  Topology t = topo::torus(3, 3, 1);
  MapCatalog catalog;
  catalog.set_gate_mode(MapCatalog::GateMode::kIncremental);
  ASSERT_EQ(catalog.gate_mode(), MapCatalog::GateMode::kIncremental);

  // A run of healthy candidates under wire churn: every one gated
  // incrementally (fast or escalated — both must land), none rejected.
  ASSERT_TRUE(catalog.publish(make_snapshot(t, 1)).published());
  t.disconnect(switch_wire(t));
  ASSERT_TRUE(catalog.publish(make_snapshot(t, 2)).published());
  ASSERT_TRUE(catalog.publish(make_snapshot(t, 3)).published());
  const auto stats = catalog.gate_stats();
  EXPECT_EQ(stats.incremental_fast + stats.incremental_escalated, 3u);
  EXPECT_EQ(stats.checker_rejections, 0u);

  // A candidate whose route table breaks the UP*/DOWN* rule (the build
  // verdict flags still say safe — only re-analysis can catch it) must be
  // refused with the offending diagnostics attached.
  MapSnapshot bad = make_snapshot(t, 4);
  ASSERT_FALSE(analysis::inject_down_up_turn(bad.map, bad.routes).empty());
  ASSERT_TRUE(bad.deadlock_free && bad.compliant);
  const auto refused = catalog.publish(std::move(bad));
  EXPECT_EQ(refused.status, MapCatalog::PublishStatus::kRejectedUnsafe);
  ASSERT_FALSE(refused.gate_errors.empty());
  bool has_route_error = false;
  for (const auto& d : refused.gate_errors) {
    has_route_error =
        has_route_error || d.code == "SL101" || d.code == "SL201";
  }
  EXPECT_TRUE(has_route_error);

  // The gate recovers: the next healthy candidate publishes.
  EXPECT_TRUE(catalog.publish(make_snapshot(t, 5)).published());
  EXPECT_EQ(catalog.epoch(), 4u);
}

TEST(MapCatalog, ParanoidGateCrossChecksWithoutDivergence) {
  Topology t = topo::torus(3, 3, 1);
  MapCatalog catalog;
  catalog.set_gate_mode(MapCatalog::GateMode::kParanoid);
  ASSERT_TRUE(catalog.publish(make_snapshot(t, 1)).published());
  t.disconnect(switch_wire(t));
  ASSERT_TRUE(catalog.publish(make_snapshot(t, 2)).published());
  ASSERT_TRUE(catalog.publish(make_snapshot(t, 3)).published());
  EXPECT_EQ(catalog.gate_stats().paranoid_divergences, 0u);
}

TEST(MapCatalog, SL502RefusesRepublishingAnArchivedEpoch) {
  const Topology t = topo::torus(3, 3, 1);
  MapCatalog catalog(/*history_limit=*/2);
  for (std::uint64_t i = 1; i <= 5; ++i) {
    ASSERT_TRUE(catalog.publish(make_snapshot(t, i)).published());
  }
  ASSERT_EQ(catalog.epoch(), 5u);

  // An archived snapshot still carries its old epoch stamp; epoch 1 is
  // more than history_limit behind the head.
  MapSnapshot archived = make_snapshot(t, 1);
  archived.epoch = 1;
  const auto refused = catalog.publish(std::move(archived));
  EXPECT_EQ(refused.status, MapCatalog::PublishStatus::kRejectedUnsafe);
  ASSERT_EQ(refused.gate_errors.size(), 1u);
  EXPECT_EQ(refused.gate_errors.front().code, "SL502");
  EXPECT_EQ(catalog.gate_stats().rejected_stale_lints, 1u);
  EXPECT_EQ(catalog.epoch(), 5u);

  // Epoch 4 is within the window: republishable (it gets a new epoch).
  MapSnapshot recent = make_snapshot(t, 4);
  recent.epoch = 4;
  EXPECT_TRUE(catalog.publish(std::move(recent)).published());
}

TEST(MapCatalog, SL501RefusesPreQuarantineCandidates) {
  const Topology t = topo::torus(3, 3, 1);
  MapCatalog catalog;
  ASSERT_TRUE(catalog.publish(make_snapshot(t)).published());

  // Quarantine a switch that the all-pairs route set traverses.
  const SnapshotPtr current = catalog.current();
  std::string victim;
  for (const auto& [key, route] : current->routes.routes) {
    for (const NodeId n : route.nodes) {
      if (current->map.is_switch(n)) {
        victim = current->map.name(n);
        break;
      }
    }
    if (!victim.empty()) {
      break;
    }
  }
  ASSERT_FALSE(victim.empty());
  MapCatalog::HealthStatus health;
  health.state = MapCatalog::HealthState::kStaleServing;
  health.quarantined = {victim};
  health.checked_at = SimTime::ms(100);
  catalog.set_health(std::move(health));

  // A candidate built BEFORE the quarantine was declared cannot have
  // observed the fault; SL501 refuses it.
  SnapshotOptions options;
  options.source = "test";
  MapSnapshot stale = build_snapshot(t, options, SimTime::ms(50));
  const auto refused = catalog.publish(std::move(stale));
  EXPECT_EQ(refused.status, MapCatalog::PublishStatus::kRejectedUnsafe);
  ASSERT_FALSE(refused.gate_errors.empty());
  EXPECT_EQ(refused.gate_errors.front().code, "SL501");
  EXPECT_EQ(refused.gate_errors.front().location, victim);

  // A candidate built AFTER the quarantine has seen the fabric since the
  // downgrade; it publishes (and resets health to fresh).
  MapSnapshot fresh = build_snapshot(t, options, SimTime::ms(200));
  EXPECT_TRUE(catalog.publish(std::move(fresh)).published());
  EXPECT_EQ(catalog.health()->state, MapCatalog::HealthState::kFresh);
}

TEST(MapCatalog, StaleEpochPublishIsRejected) {
  const Topology t = topo::torus(3, 3, 1);
  MapCatalog catalog;
  // First publish: based-on 0 means "no epoch existed when I started".
  ASSERT_TRUE(catalog.publish_if_current(make_snapshot(t, 1), 0).published());

  // A remap computed against epoch 0 raced and lost: refused.
  const auto stale = catalog.publish_if_current(make_snapshot(t, 2), 0);
  EXPECT_EQ(stale.status, MapCatalog::PublishStatus::kRejectedStale);
  EXPECT_EQ(catalog.epoch(), 1u);
  EXPECT_EQ(catalog.stats().rejected_stale, 1u);

  // Computed against the live epoch: accepted.
  const auto fresh = catalog.publish_if_current(make_snapshot(t, 3), 1);
  ASSERT_TRUE(fresh.published());
  EXPECT_EQ(fresh.epoch, 2u);
}

TEST(MapCatalog, HistoryIsBoundedAndAddressable) {
  const Topology t = topo::torus(3, 3, 1);
  MapCatalog catalog(/*history_limit=*/2);
  catalog.publish(make_snapshot(t, 1));
  catalog.publish(make_snapshot(t, 2));
  catalog.publish(make_snapshot(t, 3));

  EXPECT_EQ(catalog.at_epoch(1), nullptr);  // evicted
  ASSERT_NE(catalog.at_epoch(2), nullptr);
  EXPECT_EQ(catalog.at_epoch(2)->options.route_seed, 2u);
  ASSERT_NE(catalog.at_epoch(3), nullptr);
  EXPECT_EQ(catalog.history_epochs(), (std::vector<std::uint64_t>{2, 3}));

  // A reader that grabbed an epoch keeps it alive past eviction.
  const SnapshotPtr held = catalog.at_epoch(2);
  catalog.publish(make_snapshot(t, 4));
  EXPECT_EQ(catalog.at_epoch(2), nullptr);
  EXPECT_EQ(held->options.route_seed, 2u);
}

// ----------------------------------------------------------- query engine --

TEST(RouteQueryEngine, AnswersMatchTheRouterAndDeliver) {
  const Topology t = topo::torus(3, 3, 1);
  MapCatalog catalog;
  catalog.publish(make_snapshot(t));
  const RouteQueryEngine engine(catalog);

  simnet::Network net(t);
  const auto hosts = t.hosts();
  for (const NodeId src : hosts) {
    for (const NodeId dst : hosts) {
      if (src == dst) {
        continue;
      }
      const RouteAnswer answer = engine.route(t.name(src), t.name(dst));
      ASSERT_TRUE(answer.found);
      EXPECT_EQ(answer.epoch, 1u);
      // A route of k turns traverses k+1 wires (the source host link first).
      EXPECT_EQ(answer.hops, static_cast<int>(answer.turns.size()) + 1);
      const auto delivery = net.send(src, answer.turns);
      ASSERT_TRUE(delivery.delivered());
      EXPECT_EQ(delivery.destination, dst);
    }
  }
  EXPECT_EQ(engine.served(), hosts.size() * (hosts.size() - 1));
  EXPECT_EQ(engine.misses(), 0u);

  const FabricStats stats = engine.stats();
  EXPECT_EQ(stats.epoch, 1u);
  EXPECT_EQ(stats.hosts, 9u);
  EXPECT_EQ(stats.routes, 72u);
  EXPECT_TRUE(stats.deadlock_free);
}

TEST(RouteQueryEngine, MissesOnUnknownHostsAndEmptyCatalog) {
  MapCatalog catalog;
  const RouteQueryEngine engine(catalog);
  const RouteAnswer empty_answer = engine.route("a", "b");
  EXPECT_FALSE(empty_answer.found);
  EXPECT_EQ(empty_answer.epoch, 0u);
  EXPECT_EQ(engine.stats().hosts, 0u);

  const Topology t = topo::torus(3, 3, 1);
  catalog.publish(make_snapshot(t));
  EXPECT_FALSE(engine.route("no-such-host", t.name(t.hosts()[0])).found);
  EXPECT_FALSE(engine.reachable(t.name(t.hosts()[0]), "gone"));
  EXPECT_TRUE(
      engine.reachable(t.name(t.hosts()[0]), t.name(t.hosts()[1])));
  EXPECT_EQ(engine.misses(), 3u);
}

TEST(RouteQueryEngine, BatchFansOutOverThePool) {
  const Topology t = topo::torus(3, 3, 1);
  MapCatalog catalog;
  catalog.publish(make_snapshot(t));
  const RouteQueryEngine engine(catalog);

  const auto hosts = t.hosts();
  std::vector<RouteQuery> queries;
  for (int rep = 0; rep < 50; ++rep) {
    for (const NodeId src : hosts) {
      for (const NodeId dst : hosts) {
        if (src != dst) {
          queries.push_back(RouteQuery{t.name(src), t.name(dst)});
        }
      }
    }
  }
  queries.push_back(RouteQuery{"phantom", t.name(hosts[0])});

  common::ThreadPool pool(4);
  const auto answers = engine.run_batch(queries, pool, /*chunk_size=*/64);
  ASSERT_EQ(answers.size(), queries.size());
  for (std::size_t i = 0; i + 1 < answers.size(); ++i) {
    ASSERT_TRUE(answers[i].found) << "query " << i;
    EXPECT_EQ(answers[i].epoch, 1u);
  }
  EXPECT_FALSE(answers.back().found);
  EXPECT_EQ(engine.served(), queries.size());
  EXPECT_EQ(engine.misses(), 1u);
}

TEST(RouteQueryEngine, QuarantineWithholdsRoutesAndStaleAgeIsObservable) {
  const Topology t = topo::torus(3, 3, 1);
  MapCatalog catalog;
  catalog.publish(make_snapshot(t));  // created_at == 0
  const RouteQueryEngine engine(catalog);
  const std::string src = t.name(t.hosts()[0]);
  const std::string dst = t.name(t.hosts()[5]);

  // Fresh: answered, and stale_age is zero regardless of checked_at — a
  // snapshot that passed its last health check still describes the fabric.
  MapCatalog::HealthStatus fresh;
  fresh.checked_at = SimTime::ms(250);
  catalog.set_health(fresh);
  const RouteAnswer before = engine.route(src, dst);
  ASSERT_TRUE(before.found);
  EXPECT_EQ(before.status, QueryStatus::kOk);
  EXPECT_EQ(before.stale_age, SimTime{});

  // Quarantine every switch: any route crosses the dirty region, so the
  // query is refused as kDegraded (not kNotFound) and the reader can see
  // how far the fabric has moved past the snapshot it is being served.
  MapCatalog::HealthStatus degraded;
  degraded.state = MapCatalog::HealthState::kDegraded;
  degraded.checked_at = SimTime::ms(250);
  for (const NodeId s : t.switches()) {
    degraded.quarantined.push_back(t.name(s));
  }
  catalog.set_health(degraded);

  const RouteAnswer withheld = engine.route(src, dst);
  EXPECT_FALSE(withheld.found);
  EXPECT_EQ(withheld.status, QueryStatus::kDegraded);
  EXPECT_TRUE(withheld.turns.empty());
  EXPECT_EQ(withheld.stale_age, SimTime::ms(250));
  EXPECT_EQ(engine.degraded(), 1u);
  EXPECT_EQ(engine.misses(), 1u);

  // An unknown host under quarantine is still a plain miss, not degraded.
  EXPECT_FALSE(engine.route("phantom", dst).found);
  EXPECT_EQ(engine.degraded(), 1u);

  // Publishing a new epoch resets health: serving is trusted again. The
  // healing candidate must postdate the quarantine — a snapshot built
  // before it is exactly what SL501 refuses.
  SnapshotOptions healed_options;
  healed_options.route_seed = 2;
  healed_options.source = "test";
  catalog.publish(build_snapshot(t, healed_options, SimTime::ms(300)));
  const RouteAnswer healed = engine.route(src, dst);
  ASSERT_TRUE(healed.found);
  EXPECT_EQ(healed.status, QueryStatus::kOk);
  EXPECT_EQ(healed.stale_age, SimTime{});
}

// ------------------------------------------------------------ concurrency --

TEST(ServiceConcurrency, ReadersOnlyEverSeePublishedEpochs) {
  const Topology t = topo::torus(3, 3, 1);
  MapCatalog catalog;
  catalog.publish(make_snapshot(t, 1));
  const RouteQueryEngine engine(catalog);
  const std::size_t expected_routes = 9u * 8u;
  const std::string src = t.name(t.hosts()[0]);
  const std::string dst = t.name(t.hosts()[5]);

  constexpr std::uint64_t kEpochs = 40;
  std::atomic<bool> done{false};
  std::thread writer([&] {
    for (std::uint64_t i = 2; i <= kEpochs; ++i) {
      // Each epoch is a full rebuild with its own seed — distinct immutable
      // snapshots swapped under the readers.
      ASSERT_TRUE(
          catalog.publish_if_current(make_snapshot(t, i), i - 1).published());
    }
    done.store(true, std::memory_order_release);
  });

  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&] {
      std::uint64_t last_epoch = 0;
      while (!done.load(std::memory_order_acquire)) {
        const SnapshotPtr snap = catalog.current();
        ASSERT_NE(snap, nullptr);
        // Torn state would show as a half-built snapshot: wrong route
        // count, unverified verdict, or an epoch going backwards.
        ASSERT_TRUE(snap->deadlock_free);
        ASSERT_EQ(snap->routes.routes.size(), expected_routes);
        ASSERT_GE(snap->epoch, last_epoch);
        ASSERT_LE(snap->epoch, kEpochs);
        last_epoch = snap->epoch;

        const RouteAnswer answer = engine.route(src, dst);
        ASSERT_TRUE(answer.found);
        ASSERT_GT(answer.epoch, 0u);
      }
    });
  }
  writer.join();
  for (std::thread& reader : readers) {
    reader.join();
  }
  EXPECT_EQ(catalog.epoch(), kEpochs);
  EXPECT_EQ(catalog.stats().published, kEpochs);
}

TEST(ServiceConcurrency, QueriesContinueWhileTheRefreshLoopSwapsEpochs) {
  const Topology t = topo::torus(3, 3, 1);
  simnet::FaultSchedule schedule;
  simnet::Network net(t);
  net.attach_faults(&schedule);

  MapCatalog catalog;
  RefreshConfig config;
  config.master_name = t.name(t.hosts().front());
  RefreshLoop loop(net, catalog, config);
  ASSERT_TRUE(loop.bootstrap().swapped());

  // Kill a redundant link a little into the future: the next ticks detect
  // broken routes, remap, and republish — while the readers below hammer
  // the catalog from other threads.
  schedule.link_down(switch_wire(t), loop.now() + SimTime::ms(1));

  const RouteQueryEngine engine(catalog);
  const auto hosts = t.hosts();
  std::vector<RouteQuery> queries;
  for (const NodeId src : hosts) {
    for (const NodeId dst : hosts) {
      if (src != dst) {
        queries.push_back(RouteQuery{t.name(src), t.name(dst)});
      }
    }
  }

  std::atomic<bool> done{false};
  std::thread refresher([&] {
    loop.run(6);  // the refresh loop is the catalog's only writer
    done.store(true, std::memory_order_release);
  });

  common::ThreadPool pool(4);
  std::uint64_t batches = 0;
  std::uint64_t swaps_observed = 0;
  std::uint64_t last_epoch = 0;
  do {
    const auto answers = engine.run_batch(queries, pool, /*chunk_size=*/8);
    ++batches;
    for (const RouteAnswer& answer : answers) {
      // Every host survives the redundant-link death, so no query is ever
      // a miss — but while a repair is in flight the loop quarantines the
      // dirty region, so an answer may be transiently withheld as
      // kDegraded. What must never happen: a torn read (kNotFound for a
      // host that exists) or an answer from an unpublished epoch.
      ASSERT_TRUE(answer.found ||
                  answer.status == QueryStatus::kDegraded);
      ASSERT_GT(answer.epoch, 0u);
    }
    const std::uint64_t epoch = catalog.epoch();
    if (epoch != last_epoch) {
      ++swaps_observed;
      last_epoch = epoch;
    }
  } while (!done.load(std::memory_order_acquire));
  refresher.join();

  EXPECT_GE(batches, 1u);
  EXPECT_GE(swaps_observed, 1u);
  EXPECT_GE(catalog.epoch(), 2u);  // bootstrap + at least one heal
  EXPECT_EQ(catalog.stats().rejected_unsafe, 0u);
}

TEST(ServiceConcurrency, HistoryEvictionRacesEpochReaders) {
  // A tight history window forces an eviction on nearly every publish while
  // readers hammer at_epoch()/history_epochs() from other threads. TSan's
  // job: the deque mutation and the reader loads must never race; a reader
  // either gets null (evicted) or a fully published snapshot whose epoch
  // matches what it asked for — and a held SnapshotPtr outlives eviction.
  const Topology t = topo::torus(3, 3, 1);
  MapCatalog catalog(/*history_limit=*/2);
  catalog.publish(make_snapshot(t, 1));
  const SnapshotPtr pinned = catalog.at_epoch(1);
  ASSERT_NE(pinned, nullptr);

  constexpr std::uint64_t kEpochs = 60;
  std::atomic<bool> done{false};
  std::thread writer([&] {
    for (std::uint64_t i = 2; i <= kEpochs; ++i) {
      ASSERT_TRUE(
          catalog.publish_if_current(make_snapshot(t, i), i - 1).published());
    }
    done.store(true, std::memory_order_release);
  });

  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&] {
      std::uint64_t hits = 0;
      do {  // at least one pass even if the writer wins the startup race
        const std::uint64_t current = catalog.epoch();
        // Chase the eviction edge: the freshly published epoch is always
        // resident, the one history_limit back is being pushed out.
        for (std::uint64_t e = current; e > 0 && e + 3 > current; --e) {
          const SnapshotPtr snap = catalog.at_epoch(e);
          if (snap != nullptr) {
            ASSERT_EQ(snap->epoch, e);
            ASSERT_EQ(snap->options.route_seed, e);
            ASSERT_TRUE(snap->deadlock_free);
            ++hits;
          }
        }
        const auto epochs = catalog.history_epochs();
        ASSERT_LE(epochs.size(), 2u);
        for (std::size_t i = 1; i < epochs.size(); ++i) {
          ASSERT_LT(epochs[i - 1], epochs[i]);
        }
      } while (!done.load(std::memory_order_acquire));
      ASSERT_GT(hits, 0u);
    });
  }
  writer.join();
  for (std::thread& reader : readers) {
    reader.join();
  }

  // Epoch 1 was evicted dozens of publishes ago; the pinned reference kept
  // the snapshot itself alive and intact.
  EXPECT_EQ(catalog.at_epoch(1), nullptr);
  EXPECT_EQ(pinned->epoch, 1u);
  EXPECT_EQ(pinned->options.route_seed, 1u);
  EXPECT_EQ(catalog.epoch(), kEpochs);
}

// ------------------------------------------------------------ refresh loop --

TEST(RefreshLoop, QuietTicksObserveWithoutRepublishing) {
  const Topology t = topo::torus(3, 3, 1);
  simnet::Network net(t);
  MapCatalog catalog;
  RefreshConfig config;
  config.master_name = t.name(t.hosts().front());
  RefreshLoop loop(net, catalog, config);

  const TickReport boot = loop.bootstrap();
  EXPECT_TRUE(boot.swapped());
  EXPECT_TRUE(boot.remapped);
  EXPECT_TRUE(boot.distribution_complete);
  EXPECT_EQ(boot.epoch_after, 1u);
  EXPECT_GT(boot.probes_used, 0u);

  for (const TickReport& report : loop.run(3)) {
    EXPECT_FALSE(report.swapped());
    EXPECT_FALSE(report.remapped);
    EXPECT_EQ(report.routes_checked, 72u);
    EXPECT_EQ(report.broken, 0u);
    // An observation-only tick never tried to publish — and must not look
    // like a successful one (kNotAttempted, not a stale kPublished; no
    // phantom "distribution complete").
    EXPECT_EQ(report.publish_status, TickPublish::kNotAttempted);
    EXPECT_FALSE(report.distribution_complete);
    EXPECT_EQ(report.remap, RemapKind::kNone);
    EXPECT_EQ(report.health, MapCatalog::HealthState::kFresh);
  }
  EXPECT_EQ(catalog.epoch(), 1u);
}

TEST(RefreshLoop, RejectsInvalidConfigAtConstruction) {
  const Topology t = topo::torus(3, 3, 1);
  simnet::Network net(t);
  MapCatalog catalog;

  RefreshConfig good;
  good.master_name = t.name(t.hosts().front());

  {
    RefreshConfig bad = good;
    bad.master_name.clear();
    EXPECT_THROW(RefreshLoop(net, catalog, bad), common::CheckFailure);
  }
  {
    RefreshConfig bad = good;
    bad.check_interval = SimTime{};
    EXPECT_THROW(RefreshLoop(net, catalog, bad), common::CheckFailure);
  }
  {
    RefreshConfig bad = good;
    bad.dirty_radius = -1;
    EXPECT_THROW(RefreshLoop(net, catalog, bad), common::CheckFailure);
  }
  {
    RefreshConfig bad = good;
    bad.budget_horizon = SimTime{};
    EXPECT_THROW(RefreshLoop(net, catalog, bad), common::CheckFailure);
  }
  // A master that is not in the fabric fails too — at construction, not on
  // the first tick.
  {
    RefreshConfig bad = good;
    bad.master_name = "no-such-host";
    EXPECT_THROW(RefreshLoop(net, catalog, bad), common::CheckFailure);
  }
  // The baseline really is valid: same config, no throw.
  EXPECT_NO_THROW(RefreshLoop(net, catalog, good));
}

TEST(RefreshLoop, LinkDeathTriggersRemapVerifySwap) {
  const Topology t = topo::torus(3, 3, 1);
  simnet::FaultSchedule schedule;
  simnet::Network net(t);
  net.attach_faults(&schedule);
  MapCatalog catalog;
  RefreshConfig config;
  config.master_name = t.name(t.hosts().front());
  RefreshLoop loop(net, catalog, config);
  loop.bootstrap();
  const SnapshotPtr before = catalog.current();

  const topo::WireId victim = switch_wire(t);
  schedule.link_down(victim, loop.now() + SimTime::ms(1));

  bool healed = false;
  for (int i = 0; i < 4 && !healed; ++i) {
    const TickReport report = loop.tick();
    if (report.swapped()) {
      EXPECT_GT(report.broken, 0u);
      EXPECT_TRUE(report.remapped);
      EXPECT_EQ(report.publish_status, TickPublish::kPublished);
      healed = true;
    }
  }
  ASSERT_TRUE(healed);

  const SnapshotPtr after = catalog.current();
  ASSERT_NE(after, nullptr);
  EXPECT_GT(after->epoch, before->epoch);
  EXPECT_TRUE(after->deadlock_free);
  // The healed map is the surviving fabric: same hosts, one wire fewer.
  EXPECT_EQ(after->map.num_hosts(), before->map.num_hosts());
  EXPECT_EQ(after->map.num_wires() + 1, before->map.num_wires());

  // Its routes actually work on the live (degraded) network.
  const auto health =
      routing::check_routes(net, after->routes, after->map, loop.now());
  EXPECT_TRUE(health.healthy());

  // The pre-fault epoch stays addressable for post-mortems.
  EXPECT_EQ(catalog.at_epoch(before->epoch), before);

  // Quiet again: no further republish.
  EXPECT_FALSE(loop.tick().swapped());
}

// ------------------------------------------------------------------ codec --
// (plus the property sweep at the bottom: random catalogs round-trip and
// every single-byte corruption is rejected)

TEST(SnapshotCodec, RoundTripPreservesTheSnapshot) {
  Topology t = topo::torus(3, 3, 1);
  t.disconnect(switch_wire(t));  // a tombstone exercises compaction
  MapSnapshot original = make_snapshot(t, 77);
  original.epoch = 12;

  const std::string bytes = encode_snapshot(original);
  const MapSnapshot decoded = decode_snapshot(bytes);
  EXPECT_EQ(decoded.epoch, 12u);
  EXPECT_EQ(decoded.created_at, original.created_at);
  EXPECT_EQ(decoded.options.route_seed, 77u);
  EXPECT_EQ(decoded.options.source, "test");
  EXPECT_TRUE(decoded.map.structurally_equal(original.map));
  EXPECT_TRUE(decoded.deadlock_free);
  ASSERT_EQ(decoded.routes.routes.size(), original.routes.routes.size());
  for (const auto& [pair, route] : original.routes.routes) {
    const auto it = decoded.routes.routes.find(pair);
    ASSERT_NE(it, decoded.routes.routes.end());
    EXPECT_EQ(it->second.turns, route.turns);
  }
}

TEST(SnapshotCodec, DetectsCorruptionTruncationAndBadMagic) {
  const Topology t = topo::torus(3, 3, 1);
  const std::string bytes = encode_snapshot(make_snapshot(t));

  std::string corrupt = bytes;
  corrupt[corrupt.size() / 2] =
      static_cast<char>(corrupt[corrupt.size() / 2] ^ 0x20);
  EXPECT_THROW(decode_snapshot(corrupt), std::runtime_error);

  EXPECT_THROW(decode_snapshot(bytes.substr(0, bytes.size() - 5)),
               std::runtime_error);
  EXPECT_THROW(decode_snapshot(bytes.substr(0, 10)), std::runtime_error);

  std::string wrong_magic = bytes;
  wrong_magic[0] = 'X';
  EXPECT_THROW(decode_snapshot(wrong_magic), std::runtime_error);

  // Flipping a stored route byte (past the map text) must be caught by the
  // checksum even though the turn value could still be plausible.
  std::string flipped = bytes;
  flipped[flipped.size() - 1] =
      static_cast<char>(flipped[flipped.size() - 1] ^ 0x01);
  EXPECT_THROW(decode_snapshot(flipped), std::runtime_error);
}

TEST(SnapshotCodec, FileRoundTrip) {
  const Topology t = topo::torus(3, 3, 1);
  const MapSnapshot original = make_snapshot(t, 5);
  const std::string path = ::testing::TempDir() + "sanmap_snapshot_test.bin";
  write_snapshot_file(path, original);
  const MapSnapshot loaded = read_snapshot_file(path);
  EXPECT_TRUE(loaded.map.structurally_equal(original.map));
  EXPECT_EQ(loaded.options.route_seed, 5u);
  EXPECT_THROW(read_snapshot_file(path + ".missing"), std::runtime_error);
  std::remove(path.c_str());
}

// ------------------------------------------------------ codec properties --

TEST(SnapshotCodecProperty, RandomCatalogsRoundTrip) {
  common::Rng rng(0xc0dec);
  for (int i = 0; i < 8; ++i) {
    const int switches = 2 + static_cast<int>(rng.below(5));
    const int hosts = 2 + static_cast<int>(rng.below(6));
    const int extra = static_cast<int>(rng.below(3));
    const Topology t = topo::random_irregular(switches, hosts, extra, rng);
    MapSnapshot original = make_snapshot(t, 1 + rng.below(1000));
    original.epoch = 1 + rng.below(100);

    const MapSnapshot decoded = decode_snapshot(encode_snapshot(original));
    EXPECT_EQ(decoded.epoch, original.epoch);
    EXPECT_EQ(decoded.options.route_seed, original.options.route_seed);
    EXPECT_TRUE(decoded.map.structurally_equal(original.map));
    ASSERT_EQ(decoded.routes.routes.size(), original.routes.routes.size());
    for (const auto& [pair, route] : original.routes.routes) {
      EXPECT_EQ(decoded.routes.routes.at(pair).turns, route.turns);
    }
    // Decoding re-verifies rather than trusting stored claims.
    EXPECT_TRUE(decoded.deadlock_free);
    EXPECT_TRUE(decoded.compliant);
  }
}

TEST(SnapshotCodecProperty, EverySingleByteCorruptionIsRejected) {
  // FNV-1a's byte steps are bijections, so any one-byte change to the
  // payload changes the checksum; header corruption trips the magic,
  // version, or size checks instead. A small snapshot keeps the
  // every-position sweep fast.
  const Topology t = topo::star(2, 1);
  const std::string bytes = encode_snapshot(make_snapshot(t));
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    std::string corrupt = bytes;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0x01);
    EXPECT_THROW(decode_snapshot(corrupt), std::runtime_error)
        << "byte " << i << " of " << bytes.size();
  }
}

}  // namespace
}  // namespace sanmap::service
