// Tests for the Myricom baseline mapper (§4.1): correctness on the same
// topology families as the Berkeley mapper, the four probe categories, and
// the §4.2 comparisons (more messages, host probes dominate).
#include <gtest/gtest.h>

#include "mapper/berkeley_mapper.hpp"
#include "myricom/myricom_mapper.hpp"
#include "probe/probe_engine.hpp"
#include "topology/algorithms.hpp"
#include "topology/generators.hpp"
#include "topology/isomorphism.hpp"

namespace sanmap::myricom {
namespace {

using simnet::CollisionModel;
using simnet::Network;
using topo::NodeId;
using topo::Topology;

MyricomResult map_with_myricom(const Topology& t, NodeId mapper_host,
                               MyricomConfig config = {}) {
  Network net(t);
  return MyricomMapper(net, mapper_host, config).run();
}

TEST(MyricomMapper, MapsTheLineNetwork) {
  Topology t;
  const NodeId h0 = t.add_host("h0");
  const NodeId s0 = t.add_switch();
  const NodeId s1 = t.add_switch();
  const NodeId h1 = t.add_host("h1");
  t.connect(h0, 0, s0, 2);
  t.connect(s0, 5, s1, 1);
  t.connect(s1, 4, h1, 0);
  const auto result = map_with_myricom(t, h0);
  EXPECT_TRUE(topo::isomorphic(result.map, t));
  EXPECT_EQ(result.explored_switches, 2u);
}

TEST(MyricomMapper, MapsAStar) {
  const Topology t = topo::star(4, 2);
  const auto result = map_with_myricom(t, t.hosts().front());
  EXPECT_TRUE(topo::isomorphic(result.map, t));
}

TEST(MyricomMapper, MapsARingExactlyOncePerSwitch) {
  const Topology t = topo::ring(5, 1);
  const auto result = map_with_myricom(t, t.hosts().front());
  EXPECT_TRUE(topo::isomorphic(result.map, t));
  // Eager replicate detection: each actual switch is explored exactly once.
  EXPECT_EQ(result.explored_switches, t.num_switches());
  EXPECT_GT(result.frontier_pops, result.explored_switches);
  // Every switch here carries a host, so replicates resolve by host
  // anchoring with zero comparison probes — one of §4.1's probe-saving
  // heuristics.
  EXPECT_EQ(result.probes.compare_probes, 0u);
}

TEST(MyricomMapper, HostFreeSwitchesNeedComparisonProbes) {
  // A ring where only two adjacent switches carry hosts: the three
  // host-free switches are reachable from both directions and must be
  // disambiguated by comparison probes.
  Topology t;
  std::vector<NodeId> sw;
  for (int i = 0; i < 5; ++i) {
    sw.push_back(t.add_switch());
  }
  for (int i = 0; i < 5; ++i) {
    t.connect(sw[static_cast<std::size_t>(i)], 0,
              sw[static_cast<std::size_t>((i + 1) % 5)], 1);
  }
  const NodeId h0 = t.add_host("h0");
  t.connect(h0, 0, sw[0], 2);
  const NodeId h1 = t.add_host("h1");
  t.connect(h1, 0, sw[1], 2);
  const auto result = map_with_myricom(t, h0);
  EXPECT_TRUE(topo::isomorphic(result.map, t));
  EXPECT_EQ(result.explored_switches, 5u);
  EXPECT_GT(result.probes.compare_probes, 0u);
  EXPECT_GT(result.probes.compare_hits, 0u);
}

TEST(MyricomMapper, MapsParallelWiresAndLoopbackCables) {
  Topology t;
  const NodeId h0 = t.add_host("h0");
  const NodeId h1 = t.add_host("h1");
  const NodeId s0 = t.add_switch();
  const NodeId s1 = t.add_switch();
  t.connect(h0, 0, s0, 0);
  t.connect(s0, 1, s1, 1);
  t.connect(s0, 2, s1, 2);  // parallel cable
  t.connect(s1, 4, s1, 6);  // loopback cable
  t.connect(h1, 0, s1, 0);
  const auto result = map_with_myricom(t, h0);
  EXPECT_TRUE(topo::isomorphic(result.map, t));
}

TEST(MyricomMapper, MapsHostFreeRegionsUnlikeBerkeley) {
  // Comparison probes need no host anchors: the Myricom map covers F.
  common::Rng rng(21);
  const Topology t = topo::with_switch_tail(4, 5, 2, rng);
  const auto result = map_with_myricom(t, t.hosts().front());
  EXPECT_TRUE(topo::isomorphic(result.map, t));  // all of N, not N - F
  EXPECT_EQ(result.map.num_switches(), t.num_switches());
}

TEST(MyricomMapper, MapsSubclusterC) {
  const Topology t = topo::now_subcluster(topo::Subcluster::kC, "C");
  const auto result = map_with_myricom(t, *t.find_host("C.util"));
  EXPECT_TRUE(topo::isomorphic(result.map, t));
  EXPECT_EQ(result.explored_switches, 13u);
}

TEST(MyricomMapper, RandomNetworkSweep) {
  common::Rng rng(777);
  for (int trial = 0; trial < 8; ++trial) {
    common::Rng topo_rng(rng.next());
    const Topology t = topo::random_irregular(2 + trial, 4, trial / 2,
                                              topo_rng);
    const auto result = map_with_myricom(t, t.hosts().front());
    EXPECT_TRUE(topo::isomorphic(result.map, t)) << "trial " << trial;
  }
}

TEST(MyricomMapper, RequiresCutThroughModel) {
  const Topology t = topo::star(2, 1);
  Network net(t, CollisionModel::kCircuit);
  EXPECT_THROW(MyricomMapper(net, t.hosts().front()),
               common::CheckFailure);
}

TEST(MyricomMapper, HostProbesDominateTheMessageCount) {
  // Figure 10's signature: the host category dwarfs loop and sw because
  // every frontier pop sweeps all 14 turns for hosts.
  const Topology t = topo::now_subcluster(topo::Subcluster::kC, "C");
  const auto result = map_with_myricom(t, *t.find_host("C.util"));
  EXPECT_GT(result.probes.host_probes, result.probes.loop_probes);
  EXPECT_GT(result.probes.host_probes, result.probes.switch_probes);
  EXPECT_GT(result.probes.compare_probes, 0u);
}

TEST(MyricomMapper, SendsMoreMessagesThanBerkeley) {
  // §4.2 / Figure 10: 3.2x the messages on subcluster C (ours need not hit
  // the exact factor, but the ordering and rough magnitude must hold).
  const Topology t = topo::now_subcluster(topo::Subcluster::kC, "C");
  const NodeId mapper_host = *t.find_host("C.util");

  const auto myri = map_with_myricom(t, mapper_host);

  Network net(t);
  probe::ProbeEngine engine(net, mapper_host);
  mapper::MapperConfig config;
  config.search_depth = topo::search_depth(t, mapper_host);
  const auto berkeley = mapper::BerkeleyMapper(engine, config).run();

  const double ratio = static_cast<double>(myri.probes.total()) /
                       static_cast<double>(berkeley.probes.total());
  EXPECT_GT(ratio, 1.5);
  EXPECT_LT(ratio, 12.0);
  EXPECT_GT(myri.elapsed, berkeley.elapsed);
}

TEST(MyricomMapper, ProcessorSlowdownScalesTime) {
  const Topology t = topo::star(3, 2);
  MyricomConfig slow;
  slow.processor_slowdown = 8.0;
  MyricomConfig fast;
  fast.processor_slowdown = 1.0;
  const auto slow_result = map_with_myricom(t, t.hosts().front(), slow);
  const auto fast_result = map_with_myricom(t, t.hosts().front(), fast);
  EXPECT_EQ(slow_result.probes.total(), fast_result.probes.total());
  EXPECT_GT(slow_result.elapsed, fast_result.elapsed);
}

TEST(MyricomMapper, NarrowingReducesLoopAndSwitchProbes) {
  const Topology t = topo::now_subcluster(topo::Subcluster::kC, "C");
  MyricomConfig narrow;
  narrow.narrow_sweeps = true;
  MyricomConfig wide;
  wide.narrow_sweeps = false;
  const auto a = map_with_myricom(t, *t.find_host("C.util"), narrow);
  const auto b = map_with_myricom(t, *t.find_host("C.util"), wide);
  EXPECT_TRUE(topo::isomorphic(a.map, b.map));
  EXPECT_LT(a.probes.loop_probes + a.probes.switch_probes,
            b.probes.loop_probes + b.probes.switch_probes);
}

TEST(MyricomMapper, DegenerateTwoHostNetwork) {
  Topology t;
  const NodeId a = t.add_host("a");
  const NodeId b = t.add_host("b");
  t.connect(a, 0, b, 0);
  const auto result = map_with_myricom(t, a);
  EXPECT_EQ(result.map.num_hosts(), 2u);
  EXPECT_EQ(result.map.num_wires(), 1u);
}

}  // namespace
}  // namespace sanmap::myricom
