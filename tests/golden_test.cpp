// Differential goldens for the dense-index hot-path rewrite.
//
// Every checked-in corpus case plus both paper figures is mapped with the
// production BerkeleyMapper and digested into a text record pinning
// everything an observer could see: the probe counters, the exact virtual
// clock, the model statistics, the full probe transcript (route by route),
// and the extracted map serialized as "sanmap topology v1". The digests are
// compared byte-for-byte against golden files recorded *before* the flat
// adjacency-array rewrites landed, so any behavioral drift — one extra
// probe, a reordered transcript line, a different port assignment in the
// map — fails loudly.
//
// Regenerating (only legitimate when a PR intentionally changes mapper
// behavior, never for a "pure performance" change):
//   SANMAP_UPDATE_GOLDEN=1 ./build/tests/golden_test
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "mapper/berkeley_mapper.hpp"
#include "probe/probe_engine.hpp"
#include "simnet/network.hpp"
#include "topology/algorithms.hpp"
#include "topology/generators.hpp"
#include "topology/serialize.hpp"
#include "verify/scenario_case.hpp"

namespace sanmap {
namespace {

namespace fs = std::filesystem;

/// Same depth policy as the oracle stack: the §3.1.4 bound when the paper's
/// standing assumptions hold, else a generous structural bound.
int depth_for(const topo::Topology& t, topo::NodeId mapper) {
  if (t.num_switches() >= 1 && t.num_hosts() >= 2 && topo::connected(t)) {
    return topo::search_depth(t, mapper);
  }
  return std::max<int>(1, static_cast<int>(2 * t.num_wires() + 3));
}

/// Runs one full mapping session and digests every observable output.
std::string digest(const verify::ScenarioCase& c, int window) {
  simnet::Network net(c.network, c.collision);
  const simnet::FaultSchedule schedule = c.schedule();
  net.attach_faults(&schedule);

  probe::ProbeOptions options;
  options.record_transcript = true;
  const topo::NodeId mapper_host = c.mapper_node();
  probe::ProbeEngine engine(net, mapper_host, options);

  mapper::MapperConfig config;
  config.search_depth = depth_for(c.network, mapper_host);
  config.pipeline_window = window;
  const mapper::MapResult result = mapper::BerkeleyMapper(engine, config).run();

  std::ostringstream os;
  os << "# sanmap golden v1\n";
  os << "case " << c.name << " window " << window << "\n";
  const probe::ProbeCounters& pc = result.probes;
  os << "counters " << pc.host_probes << ' ' << pc.host_hits << ' '
     << pc.switch_probes << ' ' << pc.switch_hits << ' ' << pc.wild_probes
     << ' ' << pc.wild_hits << "\n";
  os << "elapsed_ns " << result.elapsed.to_ns() << "\n";
  os << "explorations " << result.explorations << " merges " << result.merges
     << " pruned " << result.pruned << " peak " << result.peak_model_vertices
     << "\n";
  os << "transcript\n";
  engine.write_transcript(os);
  os << "end transcript\n";
  os << "map\n" << topo::to_text(result.map) << "end map\n";
  return os.str();
}

fs::path golden_dir() { return fs::path(SANMAP_GOLDEN_DIR); }

bool update_mode() { return std::getenv("SANMAP_UPDATE_GOLDEN") != nullptr; }

/// Compares `actual` against the named golden file, or rewrites the file in
/// update mode.
void check_golden(const std::string& golden_name, const std::string& actual) {
  const fs::path path = golden_dir() / (golden_name + ".golden");
  if (update_mode()) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << actual;
    return;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good())
      << "missing golden file " << path
      << " — record it with SANMAP_UPDATE_GOLDEN=1 on a known-good build";
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string expected = buffer.str();
  if (expected == actual) {
    return;
  }
  // Pinpoint the first diverging line for a readable failure.
  std::istringstream want(expected);
  std::istringstream got(actual);
  std::string want_line;
  std::string got_line;
  int line_no = 0;
  while (true) {
    const bool have_want = static_cast<bool>(std::getline(want, want_line));
    const bool have_got = static_cast<bool>(std::getline(got, got_line));
    ++line_no;
    if (!have_want && !have_got) {
      break;
    }
    if (!have_want || !have_got || want_line != got_line) {
      FAIL() << golden_name << ": first divergence at line " << line_no
             << "\n  golden: " << (have_want ? want_line : "<eof>")
             << "\n  actual: " << (have_got ? got_line : "<eof>");
    }
  }
  FAIL() << golden_name << ": digests differ";  // unreachable belt-and-braces
}

TEST(Golden, CorpusCasesAreBitIdenticalToRecordings) {
  std::vector<fs::path> cases;
  for (const auto& entry : fs::directory_iterator(fs::path(SANMAP_CORPUS_DIR))) {
    if (entry.path().extension() == ".sancase") {
      cases.push_back(entry.path());
    }
  }
  std::sort(cases.begin(), cases.end());
  ASSERT_FALSE(cases.empty());
  for (const fs::path& path : cases) {
    SCOPED_TRACE(path.filename().string());
    const verify::ScenarioCase c = verify::read_case_file(path.string());
    check_golden(path.stem().string() + "-serial", digest(c, /*window=*/1));
  }
}

TEST(Golden, Figure4SubclusterSerial) {
  verify::ScenarioCase c;
  c.name = "fig4-subcluster-c";
  c.network = topo::now_subcluster(topo::Subcluster::kC, "C");
  c.mapper_host = "C.util";
  check_golden("fig4-serial", digest(c, /*window=*/1));
}

TEST(Golden, Figure5NowClusterSerial) {
  verify::ScenarioCase c;
  c.name = "fig5-now100";
  c.network = topo::now_cluster();
  c.mapper_host = "C.util";
  check_golden("fig5-serial", digest(c, /*window=*/1));
}

TEST(Golden, Figure4SubclusterPipelined) {
  // Window 8 exercises the batched-frontier path (ProbePipeline), which the
  // dense-index rewrite must leave equally untouched.
  verify::ScenarioCase c;
  c.name = "fig4-subcluster-c";
  c.network = topo::now_subcluster(topo::Subcluster::kC, "C");
  c.mapper_host = "C.util";
  check_golden("fig4-window8", digest(c, /*window=*/8));
}

TEST(Golden, Figure5NowClusterPipelined) {
  verify::ScenarioCase c;
  c.name = "fig5-now100";
  c.network = topo::now_cluster();
  c.mapper_host = "C.util";
  check_golden("fig5-window8", digest(c, /*window=*/8));
}

}  // namespace
}  // namespace sanmap
