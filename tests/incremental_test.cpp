// Tests for incremental remapping: cheap verification of an existing map
// and local repair across representative reconfiguration scenarios.
#include <gtest/gtest.h>

#include "mapper/berkeley_mapper.hpp"
#include "mapper/incremental.hpp"
#include "probe/probe_engine.hpp"
#include "simnet/network.hpp"
#include "topology/algorithms.hpp"
#include "topology/generators.hpp"
#include "topology/isomorphism.hpp"

namespace sanmap::mapper {
namespace {

using topo::NodeId;
using topo::Topology;

/// Maps `network` from scratch and returns the map.
MapResult full_map(const Topology& network, NodeId mapper_host) {
  simnet::Network net(network);
  probe::ProbeEngine engine(net, mapper_host);
  MapperConfig config;
  config.search_depth = topo::search_depth(network, mapper_host);
  return BerkeleyMapper(engine, config).run();
}

/// Runs the incremental mapper against `network` using `previous`.
IncrementalResult incremental(const Topology& network, NodeId mapper_host,
                              const Topology& previous, int depth) {
  simnet::Network net(network);
  probe::ProbeEngine engine(net, mapper_host);
  IncrementalConfig config;
  config.base.search_depth = depth;
  return IncrementalMapper(engine, previous, config).run();
}

TEST(Incremental, UnchangedNetworkVerifiesCheaply) {
  const Topology network = topo::now_subcluster(topo::Subcluster::kC, "C");
  const NodeId mapper_host = *network.find_host("C.util");
  const auto baseline = full_map(network, mapper_host);
  ASSERT_TRUE(topo::isomorphic(baseline.map, network));

  const auto result =
      incremental(network, mapper_host, baseline.map,
                  topo::search_depth(network, mapper_host));
  EXPECT_TRUE(result.unchanged);
  EXPECT_TRUE(result.discrepancies.empty());
  EXPECT_TRUE(topo::isomorphic(result.map, network));
  // The whole point: verification is several times cheaper than remapping.
  EXPECT_LT(result.verification_probes, baseline.probes.total() / 3);
  EXPECT_LT(result.elapsed, baseline.elapsed);
}

TEST(Incremental, PreviousMapMustContainTheMapper) {
  const Topology network = topo::star(3, 2);
  simnet::Network net(network);
  probe::ProbeEngine engine(net, network.hosts().front());
  Topology wrong;  // empty map
  wrong.add_host("somebody-else");
  EXPECT_THROW(IncrementalMapper(engine, wrong, {}), common::CheckFailure);
}

struct Scenario {
  const char* name;
  // Mutates the network; returns a short description.
  void (*mutate)(Topology&);
};

void add_host(Topology& t) {
  for (const NodeId s : t.switches()) {
    if (t.free_port(s)) {
      t.connect_any(t.add_host("brand-new"), s);
      return;
    }
  }
  FAIL() << "no free port";
}

void remove_host(Topology& t) {
  // Remove a non-utility host (the mapper maps from C.util).
  for (const NodeId h : t.hosts()) {
    if (t.name(h) != "C.util") {
      t.remove_node(h);
      return;
    }
  }
}

void remove_redundant_link(Topology& t) {
  for (const topo::WireId w : t.wires()) {
    const topo::Wire& wire = t.wire(w);
    if (!t.is_switch(wire.a.node) || !t.is_switch(wire.b.node)) {
      continue;
    }
    Topology probe = t;
    probe.disconnect(w);
    if (topo::connected(probe)) {
      t.disconnect(w);
      return;
    }
  }
  FAIL() << "no removable link";
}

void add_switch_with_host(Topology& t) {
  std::vector<NodeId> free;
  for (const NodeId s : t.switches()) {
    if (t.free_port(s)) {
      free.push_back(s);
    }
  }
  ASSERT_GE(free.size(), 2u);
  const NodeId sw = t.add_switch("spliced");
  t.connect_any(sw, free[0]);
  t.connect_any(sw, free[1]);
  t.connect_any(t.add_host("on-spliced"), sw);
}

void splice_switch_into_wire(Topology& t) {
  // Replace one switch-to-switch wire with a path through a new switch —
  // the change that per-port kind checks alone cannot see.
  for (const topo::WireId w : t.wires()) {
    const topo::Wire wire = t.wire(w);
    if (!t.is_switch(wire.a.node) || !t.is_switch(wire.b.node) ||
        wire.a.node == wire.b.node) {
      continue;
    }
    t.disconnect(w);
    const NodeId mid = t.add_switch("splice");
    t.connect(wire.a.node, wire.a.port, mid, 0);
    t.connect(mid, 1, wire.b.node, wire.b.port);
    // The spliced switch needs a host: a host-free degree-2 switch is in F
    // only if it separates... it does not here (it is on a cycle or not),
    // but give it a host so it is anchored either way.
    t.connect_any(t.add_host("on-splice"), mid);
    return;
  }
  FAIL() << "no spliceable wire";
}

class IncrementalScenarioTest : public ::testing::TestWithParam<Scenario> {};

TEST_P(IncrementalScenarioTest, RepairsTheMapLocally) {
  Topology network = topo::now_subcluster(topo::Subcluster::kC, "C");
  const NodeId mapper_host = *network.find_host("C.util");
  const auto baseline = full_map(network, mapper_host);
  ASSERT_TRUE(topo::isomorphic(baseline.map, network));

  GetParam().mutate(network);
  if (::testing::Test::HasFatalFailure()) {
    return;
  }

  const int depth = topo::search_depth(network, mapper_host);
  const auto result =
      incremental(network, mapper_host, baseline.map, depth);
  EXPECT_FALSE(result.unchanged);
  EXPECT_FALSE(result.discrepancies.empty());
  EXPECT_TRUE(topo::isomorphic(result.map, topo::core(network)))
      << GetParam().name << ": repaired map has "
      << result.map.num_hosts() << "h/" << result.map.num_switches()
      << "s/" << result.map.num_wires() << "w";

  // Repair should beat a from-scratch remap of the changed network.
  simnet::Network net(network);
  probe::ProbeEngine engine(net, mapper_host);
  MapperConfig config;
  config.search_depth = depth;
  const auto fresh = BerkeleyMapper(engine, config).run();
  EXPECT_LT(result.probes.total(), fresh.probes.total())
      << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    Scenarios, IncrementalScenarioTest,
    ::testing::Values(Scenario{"add_host", add_host},
                      Scenario{"remove_host", remove_host},
                      Scenario{"remove_link", remove_redundant_link},
                      Scenario{"add_switch", add_switch_with_host},
                      Scenario{"splice", splice_switch_into_wire}),
    [](const auto& param_info) {
      return std::string(param_info.param.name);
    });

TEST(Incremental, NoRepairModeJustReports) {
  Topology network = topo::star(3, 2);
  const NodeId mapper_host = network.hosts().front();
  const auto baseline = full_map(network, mapper_host);
  add_host(network);

  simnet::Network net(network);
  probe::ProbeEngine engine(net, mapper_host);
  IncrementalConfig config;
  config.base.search_depth = 8;
  config.repair = false;
  const auto result =
      IncrementalMapper(engine, baseline.map, config).run();
  EXPECT_FALSE(result.unchanged);
  EXPECT_FALSE(result.discrepancies.empty());
  // The map is returned as-was (stale) for the caller to decide.
  EXPECT_TRUE(topo::isomorphic(result.map, baseline.map));
}

TEST(Incremental, RepeatedIncrementalCyclesTrackTheNetwork) {
  Topology network = topo::now_subcluster(topo::Subcluster::kC, "C");
  const NodeId mapper_host = *network.find_host("C.util");
  Topology map = full_map(network, mapper_host).map;
  // A sequence of changes, each followed by an incremental cycle whose
  // output seeds the next.
  int step = 0;
  const auto cycle = [&] {
    const int depth = topo::search_depth(network, mapper_host);
    const auto result = incremental(network, mapper_host, map, depth);
    ASSERT_TRUE(topo::isomorphic(result.map, topo::core(network)))
        << "step " << step;
    map = result.map;
    ++step;
  };
  cycle();  // unchanged
  add_host(network);
  cycle();
  remove_redundant_link(network);
  cycle();
  add_switch_with_host(network);
  cycle();
  remove_host(network);
  cycle();
}

}  // namespace
}  // namespace sanmap::mapper
