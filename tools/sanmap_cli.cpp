// sanmap — command-line front end to the library.
//
//   sanmap gen    --topology now|now-c|now-a|now-b|hypercube|mesh|torus|
//                             ring|star|fattree|multipod|random [shape flags]
//                 [--out FILE]
//   sanmap info   --in FILE [--mapper HOST]
//   sanmap map    --in FILE [--mapper HOST] [--algorithm berkeley|labeled|
//                             myricom|identity|randomized]
//                 [--federate SPEC [--overlap N]]
//                 [--collision cut-through|circuit] [--out FILE]
//   sanmap routes --in FILE [--root NAME] [--sample N]
//                 [--engine updown|dfs] [--optimize]
//   sanmap lint   --in FILE [--root NAME] [--seed N] [--json]
//                 [--engine updown|dfs] [--optimize]
//                 [--map-only] [--hop-limit N] [--imbalance-threshold X]
//                 [--sabotage-turn] [--diff OLD]
//   sanmap dot    --in FILE [--out FILE]
//   sanmap serve  --in FILE [--master HOST] [--ticks N] [--interval-ms M]
//                 [--federate SPEC [--overlap N]] [--paranoid]
//                 [--engine updown|dfs] [--optimize]
//                 [--faults SPEC | --churn SPEC [--churn-seed N]]
//                 [--snapshot-out FILE]
//   sanmap query  --snapshot FILE [--src HOST --dst HOST] [--sample N]
//
// Files use the "sanmap topology v1" text format (see
// src/topology/serialize.hpp); "-" means stdin/stdout.
#include <algorithm>
#include <fstream>
#include <iostream>
#include <sstream>

#include "analysis/analyzer.hpp"
#include "analysis/incremental.hpp"
#include "common/flags.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "federation/federated_mapper.hpp"
#include "mapper/berkeley_mapper.hpp"
#include "mapper/id_mapper.hpp"
#include "mapper/incremental.hpp"
#include "mapper/labeled_mapper.hpp"
#include "mapper/randomized_mapper.hpp"
#include "myricom/myricom_mapper.hpp"
#include "probe/probe_engine.hpp"
#include "routing/deadlock.hpp"
#include "routing/engine.hpp"
#include "routing/optimizer.hpp"
#include "routing/routes.hpp"
#include "service/map_catalog.hpp"
#include "service/query_engine.hpp"
#include "service/refresh_loop.hpp"
#include "service/snapshot_codec.hpp"
#include "simnet/churn.hpp"
#include "simnet/fault_schedule.hpp"
#include "simnet/network.hpp"
#include "topology/algorithms.hpp"
#include "topology/generators.hpp"
#include "topology/isomorphism.hpp"
#include "topology/serialize.hpp"
#include "verify/scenario_case.hpp"

namespace {

using namespace sanmap;

topo::Topology read_input(const std::string& path) {
  if (path == "-") {
    return topo::read_topology(std::cin);
  }
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("cannot open " + path);
  }
  return topo::read_topology(in);
}

void write_output(const std::string& path, const std::string& content) {
  if (path == "-") {
    std::cout << content;
    return;
  }
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("cannot open " + path + " for writing");
  }
  out << content;
  std::cerr << "wrote " << path << "\n";
}

routing::EngineKind parse_engine_flag(const std::string& name) {
  const auto kind = routing::parse_engine(name);
  if (!kind) {
    throw std::runtime_error("unknown routing engine " + name +
                             " (expected updown or dfs)");
  }
  return *kind;
}

topo::NodeId pick_mapper(const topo::Topology& t, const std::string& name) {
  if (!name.empty()) {
    const auto host = t.find_host(name);
    if (!host) {
      throw std::runtime_error("no host named " + name);
    }
    return *host;
  }
  if (const auto util = t.find_host("C.util")) {
    return *util;
  }
  if (t.num_hosts() == 0) {
    throw std::runtime_error("topology has no hosts to map from");
  }
  return t.hosts().front();
}

int cmd_gen(int argc, const char* const* argv) {
  common::Flags flags;
  flags.define("topology", "now",
               "now|now-c|now-a|now-b|hypercube|mesh|torus|ring|star|"
               "fattree|multipod|random|megafattree|dragonfly");
  flags.define("out", "-", "output file, - for stdout");
  flags.define("case", "false",
               "emit a .sancase scenario (quiescent, cut-through, mapper = "
               "first host) instead of a bare topology");
  flags.define("dim", "3", "hypercube dimension");
  flags.define("width", "4", "mesh/torus width");
  flags.define("height", "4", "mesh/torus height");
  flags.define("switches", "10", "ring/random switch count");
  flags.define("hosts", "2", "hosts per switch (regular topologies)");
  flags.define("random-hosts", "10", "total hosts (random)");
  flags.define("extra-links", "5", "extra links (random)");
  flags.define("pods", "3", "pod count (multipod)");
  flags.define("pod-leaves", "3", "leaf switches per pod (multipod)");
  flags.define("seed", "1", "seed (random/dragonfly)");
  flags.define("levels", "4", "tree levels (megafattree)");
  flags.define("leaves", "512", "leaf switches (megafattree)");
  flags.define("taper", "2", "upper-level width divisor (megafattree)");
  flags.define("groups", "16", "group count (dragonfly)");
  flags.define("group-switches", "8", "switches per group (dragonfly)");
  flags.define("group-hosts", "4", "hosts per group (dragonfly)");
  if (!flags.parse(argc, argv)) {
    return 0;
  }
  const std::string kind = flags.get("topology");
  const int hosts = static_cast<int>(flags.get_int("hosts"));
  topo::Topology t;
  if (kind == "now") {
    t = topo::now_cluster();
  } else if (kind == "now-c") {
    t = topo::now_subcluster(topo::Subcluster::kC, "C");
  } else if (kind == "now-a") {
    t = topo::now_subcluster(topo::Subcluster::kA, "A");
  } else if (kind == "now-b") {
    t = topo::now_subcluster(topo::Subcluster::kB, "B");
  } else if (kind == "hypercube") {
    t = topo::hypercube(static_cast<int>(flags.get_int("dim")), hosts);
  } else if (kind == "mesh") {
    t = topo::mesh(static_cast<int>(flags.get_int("width")),
                   static_cast<int>(flags.get_int("height")), hosts);
  } else if (kind == "torus") {
    t = topo::torus(static_cast<int>(flags.get_int("width")),
                    static_cast<int>(flags.get_int("height")), hosts);
  } else if (kind == "ring") {
    t = topo::ring(static_cast<int>(flags.get_int("switches")), hosts);
  } else if (kind == "star") {
    t = topo::star(static_cast<int>(flags.get_int("switches")) % 9, hosts);
  } else if (kind == "fattree") {
    t = topo::fat_tree({});
  } else if (kind == "multipod") {
    topo::MultiPodOptions options;
    options.pods = static_cast<int>(flags.get_int("pods"));
    options.leaf_switches_per_pod =
        static_cast<int>(flags.get_int("pod-leaves"));
    options.hosts_per_leaf = hosts;
    t = topo::multi_pod(options);
  } else if (kind == "random") {
    common::Rng rng(static_cast<std::uint64_t>(flags.get_int("seed")));
    t = topo::random_irregular(
        static_cast<int>(flags.get_int("switches")),
        static_cast<int>(flags.get_int("random-hosts")),
        static_cast<int>(flags.get_int("extra-links")), rng);
  } else if (kind == "megafattree") {
    topo::MegaFatTreeOptions options;
    options.levels = static_cast<int>(flags.get_int("levels"));
    options.leaf_switches = static_cast<int>(flags.get_int("leaves"));
    options.taper = static_cast<int>(flags.get_int("taper"));
    options.hosts_per_leaf = hosts;
    t = topo::mega_fat_tree(options);
  } else if (kind == "dragonfly") {
    topo::DragonflyishOptions options;
    options.groups = static_cast<int>(flags.get_int("groups"));
    options.switches_per_group =
        static_cast<int>(flags.get_int("group-switches"));
    options.hosts_per_group = static_cast<int>(flags.get_int("group-hosts"));
    common::Rng rng(static_cast<std::uint64_t>(flags.get_int("seed")));
    t = topo::dragonfly_ish(options, rng);
  } else {
    throw std::runtime_error("unknown topology kind: " + kind);
  }
  if (flags.get("case") == "true") {
    verify::ScenarioCase scenario;
    scenario.name = kind;
    scenario.network = t;
    write_output(flags.get("out"), verify::to_text(scenario));
  } else {
    write_output(flags.get("out"), topo::to_text(t));
  }
  return 0;
}

int cmd_info(int argc, const char* const* argv) {
  common::Flags flags;
  flags.define("in", "-", "input topology file");
  flags.define("mapper", "", "mapper host name (for Q / search depth)");
  if (!flags.parse(argc, argv)) {
    return 0;
  }
  const topo::Topology t = read_input(flags.get("in"));
  std::cout << "hosts        : " << t.num_hosts() << "\n";
  std::cout << "switches     : " << t.num_switches() << "\n";
  std::cout << "links        : " << t.num_wires() << "\n";
  std::cout << "connected    : " << (topo::connected(t) ? "yes" : "no")
            << "\n";
  if (topo::connected(t) && t.num_nodes() > 0) {
    std::cout << "diameter     : " << topo::diameter(t) << "\n";
  }
  std::cout << "bridges      : " << topo::bridges(t).size() << " ("
            << topo::switch_bridges(t).size() << " switch-bridges)\n";
  const auto f = topo::separated_set(t);
  const auto f_count = std::count(f.begin(), f.end(), true);
  std::cout << "|F|          : " << f_count
            << " (nodes behind switch-bridges; the mappable core is N-F)\n";
  if (topo::connected(t) && t.num_hosts() >= 2 && t.num_switches() >= 1) {
    const topo::NodeId mapper = pick_mapper(t, flags.get("mapper"));
    std::cout << "mapper       : " << t.name(mapper) << "\n";
    const int q = topo::q_value(t, mapper);
    std::cout << "Q            : " << q << "\n";
    std::cout << "search depth : " << q + topo::diameter(t) + 1
              << " (Q + D + 1)\n";
  }
  return 0;
}

// Shared by `map --federate` and `serve --federate`: run the full sharded
// pipeline (partition, concurrent region sessions, boundary resolution,
// route recomputation, certification) and narrate it.
federation::FederatedResult run_federated(const topo::Topology& t,
                                          const std::string& spec,
                                          int overlap_margin,
                                          const std::string& root_name,
                                          std::uint64_t route_seed,
                                          routing::EngineKind engine,
                                          bool optimize,
                                          const simnet::FaultSchedule* faults,
                                          simnet::CollisionModel collision) {
  federation::FederationConfig config;
  config.spec = federation::parse_federation_spec(spec);
  config.partition.overlap_margin = overlap_margin;
  config.collision = collision;
  config.root_name = root_name;
  config.route_seed = route_seed;
  config.engine = engine;
  config.optimize = optimize;
  config.faults = faults;
  federation::FederatedMapper federated(t, config);

  common::Table regions(
      {"region", "mapper", "switches", "depth", "nodes", "probes", "time"});
  const federation::FederatedResult result = federated.run();
  for (const federation::RegionOutcome& r : result.regions) {
    regions.add_row({r.name, t.name(r.mapper),
                     std::to_string(r.switches_assigned),
                     std::to_string(r.depth), std::to_string(r.nodes_mapped),
                     std::to_string(r.probes) +
                         (r.budget_exceeded ? " (OVER BUDGET)" : ""),
                     r.elapsed.str()});
  }
  std::cerr << regions;
  std::cerr << "boundary  : " << result.boundary_switches
            << " switches on region boundaries, " << result.boundary_conflicts
            << " cross-region fusions resolved\n";
  std::cerr << "merged    : " << result.map.num_hosts() << " hosts, "
            << result.map.num_switches() << " switches, "
            << result.map.num_wires() << " links ("
            << result.merge.loaded_vertices << " vertices loaded, "
            << result.merge.pruned << " pruned)\n";
  std::cerr << "probes    : " << result.total_probes << " across all regions\n";
  std::cerr << "time      : " << result.elapsed.str()
            << " (max over regions + merge, simulated)\n";
  std::cerr << "certified : " << (result.certified ? "yes" : "NO") << "\n";
  for (const std::string& reason : result.uncertified_reasons) {
    std::cerr << "            - " << reason << "\n";
  }
  return result;
}

int cmd_map(int argc, const char* const* argv) {
  common::Flags flags;
  flags.define("in", "-", "input topology file");
  flags.define("mapper", "", "mapper host name");
  flags.define("algorithm", "berkeley",
               "berkeley|labeled|myricom|identity|randomized");
  flags.define("collision", "cut-through", "cut-through|circuit");
  flags.define("previous", "",
               "previous map file: verify it and repair locally instead of "
               "mapping from scratch (berkeley algorithm only)");
  flags.define("federate", "",
               "shard the fabric and map regions concurrently: "
               "\"auto:<k>[@<anchor-host>]\" or \"[name=]host,...\"");
  flags.define("overlap", "2",
               "federation overlap margin (extra region probe depth)");
  flags.define("out", "", "write the mapped topology here");
  flags.define("verify", "true", "check the map against the ground truth");
  if (!flags.parse(argc, argv)) {
    return 0;
  }
  const topo::Topology t = read_input(flags.get("in"));
  const auto collision = flags.get("collision") == "circuit"
                             ? simnet::CollisionModel::kCircuit
                             : simnet::CollisionModel::kCutThrough;

  if (!flags.get("federate").empty()) {
    const federation::FederatedResult result = run_federated(
        t, flags.get("federate"), static_cast<int>(flags.get_int("overlap")),
        /*root_name=*/"", /*route_seed=*/1, routing::EngineKind::kUpDown,
        /*optimize=*/false, /*faults=*/nullptr, collision);
    if (flags.get_bool("verify")) {
      const bool ok = topo::isomorphic(result.map, topo::core(t));
      std::cerr << "verified  : "
                << (ok ? "isomorphic to the ground truth" : "MISMATCH")
                << "\n";
      if (!ok) {
        return 1;
      }
    }
    if (const std::string out = flags.get("out"); !out.empty()) {
      write_output(out, topo::to_text(result.map));
    }
    return result.certified ? 0 : 1;
  }

  const topo::NodeId mapper = pick_mapper(t, flags.get("mapper"));
  const std::string algorithm = flags.get("algorithm");

  simnet::HardwareExtensions ext;
  ext.self_identifying_switches = algorithm == "identity";
  ext.hosts_answer_early_hits = algorithm == "randomized";
  simnet::Network net(t, collision, simnet::CostModel{},
                      simnet::FaultModel{}, 1, ext);
  probe::ProbeEngine engine(net, mapper);

  topo::Topology map;
  std::uint64_t probes = 0;
  common::SimTime elapsed;
  bool expects_full_n = false;  // identity/myricom map N, others N - F
  if (!flags.get("previous").empty()) {
    if (algorithm != "berkeley") {
      throw std::runtime_error("--previous works with --algorithm berkeley");
    }
    mapper::IncrementalConfig config;
    config.base.search_depth = topo::search_depth(t, mapper);
    const auto result =
        mapper::IncrementalMapper(engine, read_input(flags.get("previous")),
                                  config)
            .run();
    std::cerr << "verify    : " << result.verification_probes
              << " probes, "
              << (result.unchanged
                      ? "map unchanged"
                      : std::to_string(result.discrepancies.size()) +
                            " discrepancies repaired")
              << "\n";
    for (const std::string& d : result.discrepancies) {
      std::cerr << "            - " << d << "\n";
    }
    map = result.map;
    probes = result.probes.total();
    elapsed = result.elapsed;
  } else if (algorithm == "berkeley" || algorithm == "labeled") {
    mapper::MapperConfig config;
    config.search_depth = topo::search_depth(t, mapper);
    const auto result =
        algorithm == "labeled"
            ? mapper::LabeledMapper(engine, config).run()
            : mapper::BerkeleyMapper(engine, config).run();
    map = result.map;
    probes = result.probes.total();
    elapsed = result.elapsed;
  } else if (algorithm == "randomized") {
    mapper::RandomizedConfig config;
    config.base.search_depth = topo::search_depth(t, mapper);
    config.wild_probes = static_cast<int>(t.num_hosts()) * 4;
    const auto result = mapper::RandomizedMapper(engine, config).run();
    map = result.map;
    probes = result.probes.total();
    elapsed = result.elapsed;
  } else if (algorithm == "identity") {
    const auto result = mapper::IdMapper(engine).run();
    map = result.map;
    probes = result.probes.total();
    elapsed = result.elapsed;
    expects_full_n = true;
  } else if (algorithm == "myricom") {
    const auto result = myricom::MyricomMapper(net, mapper).run();
    map = result.map;
    probes = result.probes.total();
    elapsed = result.elapsed;
    expects_full_n = true;
  } else {
    throw std::runtime_error("unknown algorithm: " + algorithm);
  }

  std::cerr << "algorithm : " << algorithm << " (" << to_string(collision)
            << ")\n";
  std::cerr << "mapped    : " << map.num_hosts() << " hosts, "
            << map.num_switches() << " switches, " << map.num_wires()
            << " links\n";
  std::cerr << "probes    : " << probes << "\n";
  std::cerr << "time      : " << elapsed.str() << " (simulated)\n";
  if (flags.get_bool("verify")) {
    const bool ok = expects_full_n
                        ? topo::isomorphic(map, t)
                        : topo::isomorphic(map, topo::core(t));
    std::cerr << "verified  : "
              << (ok ? "isomorphic to the ground truth" : "MISMATCH")
              << "\n";
    if (!ok) {
      return 1;
    }
  }
  if (const std::string out = flags.get("out"); !out.empty()) {
    write_output(out, topo::to_text(map));
  }
  return 0;
}

int cmd_routes(int argc, const char* const* argv) {
  common::Flags flags;
  flags.define("in", "-", "input topology file (typically a mapped one)");
  flags.define("root", "", "UP*/DOWN* root switch name (default: farthest "
                           "from hosts)");
  flags.define("sample", "10", "sample routes to print");
  flags.define("seed", "1", "load-balance seed");
  flags.define("engine", "updown", "routing engine: updown|dfs");
  flags.define("optimize", "false",
               "run the skew/funnel route optimizer over the table");
  if (!flags.parse(argc, argv)) {
    return 0;
  }
  const topo::Topology t = read_input(flags.get("in"));
  routing::UpDownOptions options;
  if (const std::string root = flags.get("root"); !root.empty()) {
    for (const topo::NodeId s : t.switches()) {
      if (t.name(s) == root) {
        options.root = s;
      }
    }
    if (!options.root) {
      throw std::runtime_error("no switch named " + root);
    }
  }
  routing::RoutingResult routes = routing::compute_routes(
      t, parse_engine_flag(flags.get("engine")), options,
      static_cast<std::uint64_t>(flags.get_int("seed")));
  if (flags.get_bool("optimize")) {
    const routing::OptimizerReport opt = routing::optimize_routes(t, routes);
    std::cout << "optimizer     : max channel load " << opt.max_load_before
              << " -> " << opt.max_load_after << " (" << opt.path_moves
              << " path moves, " << opt.cable_moves << " cable moves"
              << (opt.reverted ? ", 1+ rounds reverted" : "") << ")\n";
  }
  const auto analysis = routing::analyze_routes(t, routes);
  std::cout << "engine        : " << routing::to_string(routes.meta.engine)
            << "\n";
  std::cout << "root          : " << t.name(routes.orientation.root())
            << "\n";
  std::cout << "routes        : " << routes.routes.size() << " (mean "
            << common::fmt(routes.mean_hops(), 2) << " hops, max "
            << routes.max_hops() << ")\n";
  std::cout << "deadlock-free : "
            << (analysis.deadlock_free ? "yes" : "NO — cycle found") << " ("
            << analysis.dependencies << " channel dependencies)\n";
  std::cout << "compliant     : "
            << (routing::updown_compliant(routes) ? "yes" : "NO") << "\n";

  common::Table sample({"source", "destination", "hops", "turns"});
  std::int64_t remaining = flags.get_int("sample");
  for (const auto& [key, route] : routes.routes) {
    if (remaining-- <= 0) {
      break;
    }
    sample.add_row({t.name(key.first), t.name(key.second),
                    std::to_string(route.hops()),
                    simnet::to_string(route.turns)});
  }
  std::cout << "\n" << sample;
  return analysis.deadlock_free ? 0 : 1;
}

// Parses a --faults spec: comma-separated timeline events over the input
// topology, e.g. "link-down:4@150,node-down:h3@200,flap:7@64x0.5".
//   link-down:<wire-id>@<ms>      link-up:<wire-id>@<ms>
//   node-down:<name>@<ms>         node-up:<name>@<ms>
//   flap:<wire-id>@<period-ms>x<duty>
simnet::FaultSchedule parse_faults(const std::string& spec,
                                   const topo::Topology& t) {
  simnet::FaultSchedule schedule;
  if (spec.empty()) {
    return schedule;
  }
  const auto node_by_name = [&](const std::string& name) {
    for (const topo::NodeId n : t.nodes()) {
      if (t.name(n) == name) {
        return n;
      }
    }
    throw std::runtime_error("faults: no node named " + name);
  };
  std::stringstream events(spec);
  std::string event;
  while (std::getline(events, event, ',')) {
    const auto colon = event.find(':');
    const auto at = event.find('@');
    if (colon == std::string::npos || at == std::string::npos || at < colon) {
      throw std::runtime_error("faults: malformed event " + event);
    }
    const std::string kind = event.substr(0, colon);
    const std::string target = event.substr(colon + 1, at - colon - 1);
    const std::string when = event.substr(at + 1);
    if (kind == "flap") {
      const auto x = when.find('x');
      if (x == std::string::npos) {
        throw std::runtime_error("faults: flap needs <period-ms>x<duty>");
      }
      schedule.flapping_link(
          static_cast<topo::WireId>(std::stoul(target)),
          common::SimTime::ms(std::stoll(when.substr(0, x))),
          std::stod(when.substr(x + 1)));
      continue;
    }
    const common::SimTime instant = common::SimTime::ms(std::stoll(when));
    if (kind == "link-down") {
      schedule.link_down(static_cast<topo::WireId>(std::stoul(target)),
                         instant);
    } else if (kind == "link-up") {
      schedule.link_up(static_cast<topo::WireId>(std::stoul(target)), instant);
    } else if (kind == "node-down") {
      schedule.node_down(node_by_name(target), instant);
    } else if (kind == "node-up") {
      schedule.node_up(node_by_name(target), instant);
    } else {
      throw std::runtime_error("faults: unknown event kind " + kind);
    }
  }
  return schedule;
}

int cmd_serve(int argc, const char* const* argv) {
  common::Flags flags;
  flags.define("in", "-", "input topology file (the live fabric)");
  flags.define("master", "", "mapper/master host name");
  flags.define("ticks", "10", "health-check cycles to run");
  flags.define("interval-ms", "50", "virtual time between checks");
  flags.define("root", "", "UP*/DOWN* root switch name");
  flags.define("seed", "1", "route load-balance seed");
  flags.define("engine", "updown",
               "routing engine for every published snapshot: updown|dfs");
  flags.define("optimize", "false",
               "run the skew/funnel route optimizer on every candidate");
  flags.define("faults", "",
               "fault timeline, e.g. link-down:4@150,node-down:h3@200,"
               "flap:7@64x0.5");
  flags.define("churn", "",
               "churn scenario, e.g. "
               "\"rolling(start=1s,every=5s,down=2s,count=4)\" — compiled "
               "into a fault schedule anchored after bootstrap (grammar: "
               "src/simnet/churn.hpp)");
  flags.define("churn-seed", "1", "churn target-selection seed");
  flags.define("federate", "",
               "bootstrap epoch 1 by federated mapping instead of a single "
               "master session: \"auto:<k>[@<anchor>]\" or \"[name=]host,...\"");
  flags.define("overlap", "2",
               "federation overlap margin (extra region probe depth)");
  flags.define("snapshot-out", "", "write the final snapshot here (binary)");
  flags.define("paranoid", "false",
               "cross-check the incremental publish gate with a from-scratch "
               "analysis on every candidate snapshot");
  if (!flags.parse(argc, argv)) {
    return 0;
  }
  const topo::Topology t = read_input(flags.get("in"));
  const topo::NodeId master = pick_mapper(t, flags.get("master"));
  if (!flags.get("churn").empty() && !flags.get("faults").empty()) {
    throw std::runtime_error("serve: --faults and --churn are exclusive "
                             "(a churn scenario compiles its own timeline)");
  }
  const simnet::FaultSchedule schedule = parse_faults(flags.get("faults"), t);

  simnet::Network net(t);
  if (flags.get("churn").empty()) {
    net.attach_faults(&schedule);
  }
  service::MapCatalog catalog;
  service::RefreshConfig config;
  config.master_name = t.name(master);
  config.check_interval =
      common::SimTime::ms(flags.get_int("interval-ms"));
  config.root_name = flags.get("root");
  config.route_seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  config.engine = parse_engine_flag(flags.get("engine"));
  config.optimize = flags.get_bool("optimize");
  config.paranoid = flags.get_bool("paranoid");
  service::RefreshLoop loop(net, catalog, config);

  if (!flags.get("federate").empty()) {
    // Federated bootstrap: shard the fabric, map regions concurrently, and
    // publish the certified merged model as epoch 1. The loop's own tick()
    // only bootstraps an *empty* catalog, so it picks up from here with
    // plain health checks — and its incremental/full remap rungs take over
    // on any later breakage.
    const federation::FederatedResult result = run_federated(
        t, flags.get("federate"), static_cast<int>(flags.get_int("overlap")),
        flags.get("root"),
        static_cast<std::uint64_t>(flags.get_int("seed")), config.engine,
        config.optimize, flags.get("churn").empty() ? &schedule : nullptr,
        simnet::CollisionModel::kCutThrough);
    if (!result.certified) {
      std::cerr << "bootstrap : REFUSED — uncertified merged map is not "
                   "publishable\n";
      return 1;
    }
    service::SnapshotOptions snapshot_options;
    snapshot_options.root_name = flags.get("root");
    snapshot_options.route_seed =
        static_cast<std::uint64_t>(flags.get_int("seed"));
    snapshot_options.engine = config.engine;
    snapshot_options.optimize = config.optimize;
    snapshot_options.source = "federated-bootstrap";
    const auto publish = catalog.publish(service::build_snapshot(
        result.map, snapshot_options, result.elapsed));
    if (!publish.published()) {
      std::cerr << "bootstrap : publish refused ("
                << to_string(publish.status) << ")\n";
      return 1;
    }
    std::cerr << "bootstrap : epoch " << publish.epoch << " at "
              << result.elapsed.str() << " (federated, "
              << result.regions.size() << " regions, " << result.total_probes
              << " probes)\n";
  } else {
    const auto boot = loop.bootstrap();
    std::cerr << "bootstrap : epoch " << boot.epoch_after << " at "
              << boot.at.str() << " (" << boot.probes_used << " probes, "
              << (boot.distribution_complete ? "tables distributed"
                                             : "DISTRIBUTION INCOMPLETE")
              << ")\n";
  }

  // Churn clauses are anchored after bootstrap (the loop's clock only
  // starts once the fabric is mapped); the mapper host is immune, so the
  // scenario can never take the service's own seat away.
  simnet::FaultSchedule churn_schedule;
  if (!flags.get("churn").empty()) {
    const simnet::ChurnSpec spec =
        simnet::parse_churn_spec(flags.get("churn"));
    const simnet::ChurnGenerator generator(
        spec.shifted(loop.now()),
        static_cast<std::uint64_t>(flags.get_int("churn-seed")));
    churn_schedule = generator.compile(t, {master});
    net.attach_faults(&churn_schedule);
    std::cerr << "churn     : " << churn_schedule.events()
              << " fault events over "
              << spec.horizon(t.num_switches()).str()
              << " past bootstrap (seed " << flags.get_int("churn-seed")
              << ")\n";
  }

  common::Table table(
      {"tick", "t", "checked", "broken", "action", "health", "epoch"});
  const std::int64_t ticks = flags.get_int("ticks");
  for (std::int64_t i = 0; i < ticks; ++i) {
    const auto report = loop.tick();
    std::string action = "observe";
    if (report.backoff_active) {
      action = "backoff";
    } else if (report.budget_exhausted) {
      action = "budget";
    } else if (report.remapped) {
      action = std::string(to_string(report.remap)) +
               (report.escalated ? "(escalated)" : "") + " -> " +
               to_string(report.publish_status);
    }
    table.add_row({std::to_string(i), report.at.str(),
                   std::to_string(report.routes_checked),
                   std::to_string(report.broken), action,
                   service::to_string(report.health),
                   std::to_string(report.epoch_after)});
  }
  std::cout << table;

  const auto stats = catalog.stats();
  std::cerr << "catalog   : " << stats.published << " published, "
            << stats.rejected_unsafe << " rejected unsafe, "
            << stats.rejected_stale << " rejected stale\n";
  const auto gate = catalog.gate_stats();
  std::cerr << "gate      : " << gate.incremental_fast << " fast, "
            << gate.incremental_escalated << " escalated, "
            << gate.checker_rejections << " checker rejections, "
            << gate.paranoid_divergences << " divergences, "
            << gate.rejected_stale_lints << " stale-lint refusals\n";
  const service::SnapshotPtr current = catalog.current();
  if (current && !flags.get("snapshot-out").empty()) {
    service::write_snapshot_file(flags.get("snapshot-out"), *current);
    std::cerr << "wrote " << flags.get("snapshot-out") << " (epoch "
              << current->epoch << ")\n";
  }
  return current && current->deadlock_free ? 0 : 1;
}

int cmd_query(int argc, const char* const* argv) {
  common::Flags flags;
  flags.define("snapshot", "", "snapshot file written by sanmap serve");
  flags.define("src", "", "source host name");
  flags.define("dst", "", "destination host name");
  flags.define("sample", "0", "also print the first N routes");
  if (!flags.parse(argc, argv)) {
    return 0;
  }
  if (flags.get("snapshot").empty()) {
    throw std::runtime_error("--snapshot is required");
  }
  const service::MapSnapshot snapshot =
      service::read_snapshot_file(flags.get("snapshot"));
  std::cout << "epoch         : " << snapshot.epoch << " (from "
            << snapshot.options.source << " at " << snapshot.created_at.str()
            << ")\n";
  std::cout << "fabric        : " << snapshot.map.num_hosts() << " hosts, "
            << snapshot.map.num_switches() << " switches, "
            << snapshot.map.num_wires() << " links\n";
  std::cout << "routes        : " << snapshot.routes.routes.size() << " (mean "
            << common::fmt(snapshot.mean_hops, 2) << " hops, max "
            << snapshot.max_hops << ")\n";
  std::cout << "deadlock-free : " << (snapshot.deadlock_free ? "yes" : "NO")
            << " (verified on load; " << snapshot.dependencies
            << " channel dependencies)\n";

  if (!flags.get("src").empty() || !flags.get("dst").empty()) {
    const auto answer = service::RouteQueryEngine::route_on(
        snapshot, flags.get("src"), flags.get("dst"));
    if (!answer.found) {
      std::cerr << "no route " << flags.get("src") << " -> "
                << flags.get("dst") << "\n";
      return 1;
    }
    std::cout << "route         : " << flags.get("src") << " -> "
              << flags.get("dst") << ", " << answer.hops << " hops, turns "
              << simnet::to_string(answer.turns) << "\n";
  }

  if (std::int64_t remaining = flags.get_int("sample"); remaining > 0) {
    common::Table sample({"source", "destination", "hops", "turns"});
    for (const auto& [key, route] : snapshot.routes.routes) {
      if (remaining-- <= 0) {
        break;
      }
      sample.add_row({snapshot.map.name(key.first),
                      snapshot.map.name(key.second),
                      std::to_string(route.hops()),
                      simnet::to_string(route.turns)});
    }
    std::cout << "\n" << sample;
  }
  return 0;
}

// Reads one lint input (file path or "-" for stdin) and dispatches on
// content, not extension, so piped stdin works the same as files:
// a .sancase scenario, a to_dot export, or a topology v1 file.
topo::Topology read_lint_input(const std::string& path) {
  std::string text;
  {
    std::ostringstream buffer;
    if (path == "-") {
      buffer << std::cin.rdbuf();
    } else {
      std::ifstream in(path);
      if (!in) {
        throw std::runtime_error("cannot open " + path);
      }
      buffer << in.rdbuf();
    }
    text = buffer.str();
  }
  if (text.rfind("# sanmap case v1", 0) == 0) {
    return verify::case_from_text(text).network;
  }
  if (text.find_first_not_of(" \t\r\n") != std::string::npos &&
      text.compare(text.find_first_not_of(" \t\r\n"), 5, "graph") == 0) {
    return topo::dot_from_text(text);
  }
  return topo::from_text(text);
}

// The human-readable tail of a lint run (the --json path bypasses this).
// Returns the report's exit code.
int print_lint_result(const analysis::AnalysisResult& result) {
  std::cout << result.report.text();
  if (result.analyzed_routes) {
    std::cout << "legality : " << result.legality.routes.size()
              << " routes from root " << result.legality.root_name << ", "
              << (result.legality.all_legal ? "all legal"
                                            : "ILLEGAL TURNS FOUND")
              << "\n";
    std::cout << "deadlock : "
              << (result.deadlock.deadlock_free ? "acyclic" : "CYCLE") << " ("
              << result.deadlock.channels << " channels, "
              << result.deadlock.dependencies << " dependencies)\n";
  }
  std::cout << "verdict  : "
            << (result.report.exit_code() == 0
                    ? "clean"
                    : result.report.exit_code() == 1 ? "warnings" : "ERRORS")
            << "\n";
  return result.report.exit_code();
}

// sanmap lint --diff: incremental re-analysis of NEW against OLD. Both
// inputs must share a wire/node id space (the usual source: two
// serializations of the same fabric across a mutation or a churn window —
// topology ids are append-only, so that correspondence is exact). The old
// case primes an AnalysisState, the new one is reanalyzed through the
// dirty-region engine, and an independent DeltaChecker re-proves the
// emitted CertificateDelta; a refused delta is an ERROR-grade exit no
// matter what the report itself says.
int lint_diff(const topo::Topology& old_fabric, const topo::Topology& fabric,
              const std::string& root_name, std::uint64_t seed,
              routing::EngineKind engine,
              const analysis::AnalyzerOptions& options, bool json) {
  const auto route = [&](const topo::Topology& t) {
    routing::UpDownOptions route_options;
    if (!root_name.empty()) {
      for (const topo::NodeId s : t.switches()) {
        if (t.name(s) == root_name) {
          route_options.root = s;
        }
      }
      if (!route_options.root) {
        throw std::runtime_error("no switch named " + root_name);
      }
    }
    return routing::compute_routes(t, engine, route_options, seed);
  };
  const routing::RoutingResult old_routes = route(old_fabric);
  const routing::RoutingResult new_routes = route(fabric);

  analysis::AnalysisStateOptions state_options;
  state_options.analyzer = options;
  analysis::AnalysisState state(state_options);
  analysis::DeltaChecker checker;
  std::vector<std::string> why;

  const analysis::AnalysisState::Result base =
      state.reset(old_fabric, old_routes);
  if (!checker.check(old_fabric, old_routes, base.analysis, base.delta,
                     &why)) {
    std::cerr << "baseline  : REJECTED by the certificate checker\n";
    for (const std::string& line : why) {
      std::cerr << "            - " << line << "\n";
    }
    return 2;
  }
  const analysis::AnalysisState::Result step = state.reanalyze(fabric,
                                                               new_routes);
  const bool proven =
      checker.check(fabric, new_routes, step.analysis, step.delta, &why);

  const analysis::CertificateDelta& delta = step.delta;
  std::cerr << "baseline  : "
            << (base.analysis.report.exit_code() == 2 ? "ERRORS" : "ok")
            << " (" << old_fabric.num_switches() << " switches, "
            << old_routes.routes.size() << " routes)\n";
  std::cerr << "delta     : revision " << delta.base_revision << " -> "
            << delta.revision << ", ";
  if (delta.escalated_full) {
    std::cerr << "escalated (" << analysis::to_string(delta.reason) << ")\n";
  } else {
    std::cerr << "fast path, " << delta.touched() << " touched\n";
    std::cerr << "            dirty " << delta.dirty_wires.size()
              << " wires / " << delta.dirty_nodes.size() << " nodes; routes "
              << delta.changed_routes.size() << " changed / "
              << delta.removed_routes.size() << " removed; labels "
              << delta.label_updates.size() << "; legality "
              << delta.legality_updates.size() << "; edges +"
              << delta.inserted_edges.size() << "/-"
              << delta.removed_edges.size()
              << (delta.order_rebuilt ? "; order rebuilt" : "") << "\n";
  }
  if (proven) {
    std::cerr << "checker   : delta PROVEN (revision " << checker.revision()
              << ")\n";
  } else {
    std::cerr << "checker   : delta REJECTED\n";
    for (const std::string& line : why) {
      std::cerr << "            - " << line << "\n";
    }
  }

  int code;
  if (json) {
    std::cout << analysis::to_json(step.analysis) << "\n";
    code = step.analysis.report.exit_code();
  } else {
    code = print_lint_result(step.analysis);
  }
  return proven ? code : 2;
}

// sanmap lint: the static analyzer's CLI face. Reads a topology v1 file,
// a to_dot export, or a .sancase scenario (auto-detected), runs sanlint,
// and exits with the report's max severity (0 clean/info, 1 warnings,
// 2 errors). With --diff OLD the run goes through the incremental engine
// instead: OLD primes the baseline, --in is reanalyzed as a delta.
int cmd_lint(int argc, const char* const* argv) {
  common::Flags flags;
  flags.define("in", "-",
               "input: topology v1, sanmap dot export, or .sancase");
  flags.define("root", "", "UP*/DOWN* root switch name");
  flags.define("seed", "1", "route load-balance seed");
  flags.define("engine", "updown", "routing engine: updown|dfs");
  flags.define("optimize", "false",
               "run the skew/funnel route optimizer before linting");
  flags.define("json", "false", "emit the full report as JSON");
  flags.define("map-only", "false", "fabric lints only, skip the route phase");
  flags.define("hop-limit", "0", "warn on routes longer than this (0 = off)");
  flags.define("imbalance-threshold", "6.0",
               "warn when max channel load exceeds mean x this");
  flags.define("sabotage-turn", "false",
               "inject an illegal down-to-up turn into one route first "
               "(self-check: lint must then fail with SL101)");
  flags.define("diff", "",
               "baseline input: prime the incremental engine on it, "
               "reanalyze --in as a certificate delta, and have the "
               "independent checker re-prove the delta");
  if (!flags.parse(argc, argv)) {
    return 0;
  }

  topo::Topology fabric = read_lint_input(flags.get("in"));

  analysis::AnalyzerOptions options;
  options.lints.hop_limit = static_cast<int>(flags.get_int("hop-limit"));
  options.lints.load_imbalance_threshold =
      flags.get_double("imbalance-threshold");

  if (!flags.get("diff").empty()) {
    // Diff mode routes over the raw fabrics (no component stripping, no
    // compaction): the incremental engine keys its dirty sets on wire and
    // node ids, and only the uncompacted fabric keeps those stable across
    // the two inputs.
    return lint_diff(read_lint_input(flags.get("diff")), fabric,
                     flags.get("root"),
                     static_cast<std::uint64_t>(flags.get_int("seed")),
                     parse_engine_flag(flags.get("engine")), options,
                     flags.get_bool("json"));
  }

  analysis::AnalysisResult result;
  const bool routable = !flags.get_bool("map-only") &&
                        fabric.num_switches() >= 1 && fabric.num_hosts() >= 1;
  if (routable) {
    // Route over the component a mapper would discover: lints about the
    // rest of the fabric still come from the full-map fabric pass below.
    topo::Topology local = fabric;
    std::vector<int> component;
    topo::components(local, component);
    const topo::NodeId anchor = local.hosts().front();
    for (const topo::NodeId n : local.nodes()) {
      if (component[n] != component[anchor]) {
        local.remove_node(n);
      }
    }
    local = local.compacted();
    routing::UpDownOptions route_options;
    if (const std::string root = flags.get("root"); !root.empty()) {
      for (const topo::NodeId s : local.switches()) {
        if (local.name(s) == root) {
          route_options.root = s;
        }
      }
      if (!route_options.root) {
        throw std::runtime_error("no switch named " + root +
                                 " in the mapper's component");
      }
    }
    if (local.num_switches() >= 1) {
      routing::RoutingResult routes = routing::compute_routes(
          local, parse_engine_flag(flags.get("engine")), route_options,
          static_cast<std::uint64_t>(flags.get_int("seed")));
      if (flags.get_bool("optimize")) {
        routing::optimize_routes(local, routes);
      }
      if (flags.get_bool("sabotage-turn")) {
        const std::string injected =
            analysis::inject_down_up_turn(local, routes);
        if (injected.empty()) {
          throw std::runtime_error(
              "--sabotage-turn: topology offers no injectable detour");
        }
        std::cerr << "sabotage  : " << injected << "\n";
      }
      result = analysis::analyze(local, routes, options);
    } else {
      result = analysis::analyze_map(local, options);
    }
    // Fabric lints over the FULL map too (dangling wires or port clashes
    // outside the mapped component still deserve diagnostics), deduped by
    // the report's own per-code cap.
    if (local.num_nodes() != fabric.num_nodes()) {
      analysis::AnalysisResult whole = analysis::analyze_map(fabric, options);
      result.report.merge(whole.report);
    }
  } else {
    result = analysis::analyze_map(fabric, options);
  }

  if (flags.get_bool("json")) {
    std::cout << analysis::to_json(result) << "\n";
    return result.report.exit_code();
  }
  return print_lint_result(result);
}

int cmd_dot(int argc, const char* const* argv) {
  common::Flags flags;
  flags.define("in", "-", "input topology file");
  flags.define("out", "-", "output dot file");
  if (!flags.parse(argc, argv)) {
    return 0;
  }
  write_output(flags.get("out"), topo::to_dot(read_input(flags.get("in"))));
  return 0;
}

void usage() {
  std::cerr << "usage: sanmap <gen|info|map|routes|lint|serve|query|dot> "
               "[flags]\n"
               "run a subcommand with --help for its flags\n";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string command = argv[1];
  // A global --verbose anywhere on the line lowers the log threshold; it is
  // stripped before subcommand flag parsing.
  std::vector<const char*> args;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--verbose") {
      common::set_log_threshold(common::LogLevel::kDebug);
      continue;
    }
    args.push_back(argv[i]);
  }
  const int sub_argc = static_cast<int>(args.size());
  const char* const* sub_argv = args.data();
  try {
    if (command == "gen") {
      return cmd_gen(sub_argc, sub_argv);
    }
    if (command == "info") {
      return cmd_info(sub_argc, sub_argv);
    }
    if (command == "map") {
      return cmd_map(sub_argc, sub_argv);
    }
    if (command == "routes") {
      return cmd_routes(sub_argc, sub_argv);
    }
    if (command == "lint") {
      return cmd_lint(sub_argc, sub_argv);
    }
    if (command == "serve") {
      return cmd_serve(sub_argc, sub_argv);
    }
    if (command == "query") {
      return cmd_query(sub_argc, sub_argv);
    }
    if (command == "dot") {
      return cmd_dot(sub_argc, sub_argv);
    }
    usage();
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "sanmap " << command << ": " << e.what() << "\n";
    return 1;
  }
}
