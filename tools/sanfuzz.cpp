// sanfuzz — the differential verification driver.
//
//   sanfuzz [--trials N] [--seed S] [--max-mutations M]      fuzz campaign
//           [--corpus DIR] [--artifacts DIR] [--sabotage]
//           [--no-shrink]
//   sanfuzz --replay FILE [--sabotage]                       one case
//   sanfuzz --replay-dir DIR [--sabotage]                    a corpus
//   sanfuzz --shrink-case FILE [--sabotage]                  minimize a repro
//   sanfuzz --write-corpus DIR                               emit seed corpus
//
// Cases use the "sanmap case v1" text format (src/verify/scenario_case.hpp).
// Every reported failure prints the exact (seed, trial, case-seed) triple
// and the repro file path, so any violation is replayable in isolation.
// Exit status: 0 when every oracle held, 1 on violations, 2 on usage error.
#include <algorithm>
#include <filesystem>
#include <iostream>
#include <vector>

#include "common/flags.hpp"
#include "verify/fuzzer.hpp"
#include "verify/minimize.hpp"

namespace {

using namespace sanmap;

std::vector<std::string> case_files(const std::string& dir) {
  std::vector<std::string> paths;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.is_regular_file() && entry.path().extension() == ".sancase") {
      paths.push_back(entry.path().string());
    }
  }
  std::sort(paths.begin(), paths.end());
  return paths;
}

int replay_one(const std::string& path, const verify::OracleOptions& oracle) {
  const verify::ScenarioCase c = verify::read_case_file(path);
  const verify::OracleReport report = verify::replay_case(c, oracle);
  std::cout << path << " [" << c.name << "]: "
            << (report.ok() ? "OK" : "VIOLATED") << '\n';
  if (!report.ok()) {
    std::cout << report.summary();
  }
  return report.ok() ? 0 : 1;
}

int cmd_replay_dir(const std::string& dir,
                   const verify::OracleOptions& oracle) {
  const auto paths = case_files(dir);
  if (paths.empty()) {
    std::cerr << "no .sancase files under " << dir << '\n';
    return 2;
  }
  int violated = 0;
  for (const std::string& path : paths) {
    violated += replay_one(path, oracle);
  }
  std::cout << paths.size() << " cases, " << violated << " violated\n";
  return violated == 0 ? 0 : 1;
}

int cmd_write_corpus(const std::string& dir) {
  std::filesystem::create_directories(dir);
  for (const verify::ScenarioCase& c : verify::builtin_corpus()) {
    const std::string path = dir + "/" + c.name + ".sancase";
    verify::write_case_file(path, c);
    std::cout << "wrote " << path << '\n';
  }
  return 0;
}

int cmd_shrink(const std::string& path, const verify::OracleOptions& oracle,
               int max_checks) {
  const verify::ScenarioCase c = verify::read_case_file(path);
  verify::MinimizeOptions options;
  options.oracle = oracle;
  options.max_checks = max_checks;
  const auto result = verify::minimize(c, options);
  if (!result) {
    std::cout << path << ": no oracle violation to preserve — nothing to do\n";
    return 0;
  }
  const std::string out =
      std::filesystem::path(path).replace_extension(".min.sancase").string();
  verify::write_case_file(out, result->best);
  std::cout << path << ": " << c.network.num_nodes() << " -> "
            << result->best.network.num_nodes() << " nodes ("
            << result->target_oracle << " preserved, " << result->checks
            << " checks" << (result->budget_exhausted ? ", budget hit" : "")
            << ")\n  wrote " << out << '\n';
  return 1;  // the input violates by construction
}

int cmd_fuzz(const common::Flags& flags,
             const verify::OracleOptions& oracle) {
  verify::FuzzOptions options;
  options.trials = static_cast<int>(flags.get_int("trials"));
  options.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  options.max_mutations = static_cast<int>(flags.get_int("max-mutations"));
  options.oracle = oracle;
  options.minimize_failures = flags.get_bool("shrink");
  options.minimize_max_checks = static_cast<int>(flags.get_int("max-checks"));
  options.artifacts_dir = flags.get("artifacts");
  options.progress = [](const std::string& line) {
    std::cout << line << '\n';
  };
  const std::string corpus_dir = flags.get("corpus");
  if (!corpus_dir.empty()) {
    for (const std::string& path : case_files(corpus_dir)) {
      options.corpus.push_back(verify::read_case_file(path));
    }
    if (options.corpus.empty()) {
      std::cerr << "no .sancase files under " << corpus_dir << '\n';
      return 2;
    }
  }

  const verify::FuzzReport report = verify::fuzz(options);
  std::cout << report.trials << " trials with seed " << options.seed << ": "
            << report.failures.size() << " violating case(s)\n";
  for (const auto& [oracle_name, count] : report.skip_counts) {
    std::cout << "  skipped " << oracle_name << " x" << count << '\n';
  }
  for (const verify::FuzzFailure& failure : report.failures) {
    std::cout << "FAILURE trial " << failure.trial << ": replay with --seed "
              << failure.seed << " (case-seed " << failure.case_seed << ")";
    if (!failure.artifact_path.empty()) {
      std::cout << ", repro " << failure.artifact_path;
    }
    std::cout << '\n';
    for (const verify::Violation& v : failure.report.violations) {
      std::cout << "  " << v.oracle << ": " << v.detail << '\n';
    }
  }
  return report.ok() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  common::Flags flags;
  flags.define("trials", "200", "fuzz trials to run");
  flags.define("seed", "1", "base seed (every trial derives its own)");
  flags.define("max-mutations", "4", "mutations per trial, drawn from [1, M]");
  flags.define("corpus", "", "directory of .sancase seed cases "
                             "(default: built-in corpus)");
  flags.define("artifacts", "sanfuzz-artifacts",
               "directory for violation repro files (empty disables)");
  flags.define("shrink", "true", "minimize violating cases before reporting");
  flags.define("max-checks", "400", "oracle-run budget per minimization");
  flags.define("sabotage", "false",
               "break the mapper on purpose (skip replicate merges) to "
               "verify the fuzzer catches it");
  flags.define("replay", "", "replay one .sancase file and exit");
  flags.define("replay-dir", "", "replay every .sancase in a directory");
  flags.define("shrink-case", "", "minimize one violating .sancase file");
  flags.define("write-corpus", "",
               "write the built-in seed corpus into a directory and exit");
  try {
    if (!flags.parse(argc, argv)) {
      return 0;
    }
    verify::OracleOptions oracle;
    oracle.sabotage_skip_merges = flags.get_bool("sabotage");
    oracle.route_seed = static_cast<std::uint64_t>(flags.get_int("seed"));

    if (!flags.get("write-corpus").empty()) {
      return cmd_write_corpus(flags.get("write-corpus"));
    }
    if (!flags.get("replay").empty()) {
      return replay_one(flags.get("replay"), oracle);
    }
    if (!flags.get("replay-dir").empty()) {
      return cmd_replay_dir(flags.get("replay-dir"), oracle);
    }
    if (!flags.get("shrink-case").empty()) {
      return cmd_shrink(flags.get("shrink-case"), oracle,
                        static_cast<int>(flags.get_int("max-checks")));
    }
    return cmd_fuzz(flags, oracle);
  } catch (const std::exception& e) {
    std::cerr << "sanfuzz: " << e.what() << '\n';
    return 2;
  }
}
