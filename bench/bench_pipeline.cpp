// Pipelined probing: map time vs outstanding-probe window (DESIGN.md §11).
//
// Sweeps window ∈ {1, 2, 4, 8, 16} over three scenario families and, for
// every run, checks the pipeline's core contract against a serial
// baseline on the same fabric:
//
//  * probe counters identical and maps isomorphic at every window
//    (pipelining is a pure re-timing);
//  * window = 1 reproduces the serial engine's elapsed() exactly, to the
//    nanosecond;
//  * elapsed() never exceeds serial.
//
// Scenarios: the Figure-5 100-node NOW fabric with full participation
// (timeouts come from free ports), the same fabric with Figure-9 partial
// participation (the timeout-heavy case — most host-probes go to hosts
// with no daemon and burn a full probe_timeout), and every quiescent
// connected corpus topology under tests/corpus. Any contract violation —
// or a window-8 speedup below 3x on the timeout-heavy scenario — makes
// the binary exit nonzero, so CI can run it as an acceptance gate.
//
// Results are emitted to BENCH_pipeline.json via JsonReport.
#include <algorithm>
#include <filesystem>
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "common/flags.hpp"
#include "common/table.hpp"
#include "verify/scenario_case.hpp"

namespace {

using namespace sanmap;

struct Scenario {
  std::string name;
  topo::Topology network;
  topo::NodeId mapper_host = topo::kInvalidNode;
  std::vector<topo::NodeId> participants;  // empty = everyone answers
  bool timeout_heavy = false;              // the >= 3x acceptance scenario
};

mapper::MapResult run_window(const Scenario& s, int window) {
  simnet::Network net(s.network);
  probe::ProbeOptions options;
  options.participants = s.participants;
  probe::ProbeEngine engine(net, s.mapper_host, options);
  mapper::MapperConfig config;
  config.search_depth = topo::search_depth(s.network, s.mapper_host);
  config.pipeline_window = window;
  return mapper::BerkeleyMapper(engine, config).run();
}

}  // namespace

int main(int argc, char** argv) {
  common::Flags flags;
  flags.define("corpus", "tests/corpus", "directory of .sancase topologies");
  flags.define("participants", "5",
               "daemons running in the timeout-heavy scenario");
  flags.define("smoke", "false",
               "CI mode: sweep only windows 1 and 8 on the corpus");
  if (!flags.parse(argc, argv)) {
    return 0;
  }
  const bool smoke = flags.get_bool("smoke");

  std::vector<Scenario> scenarios;
  {
    Scenario full;
    full.name = "fig5-full-participation";
    full.network = topo::now_cluster();
    full.mapper_host = bench::mapper_host_of(full.network);
    scenarios.push_back(std::move(full));

    // Figure-9 partial participation: only a handful of hosts run a
    // daemon, so almost every host-probe times out — the paper's §5
    // worst case and the pipeline's best case.
    Scenario partial;
    partial.name = "fig9-partial-participation";
    partial.network = topo::now_cluster();
    partial.mapper_host = bench::mapper_host_of(partial.network);
    partial.timeout_heavy = true;
    const auto count = static_cast<std::size_t>(
        std::max<std::int64_t>(1, flags.get_int("participants")));
    partial.participants.push_back(partial.mapper_host);
    for (const topo::NodeId h : partial.network.hosts()) {
      if (partial.participants.size() >= count) {
        break;
      }
      if (h != partial.mapper_host) {
        partial.participants.push_back(h);
      }
    }
    scenarios.push_back(std::move(partial));
  }
  {
    std::vector<std::filesystem::path> paths;
    std::error_code ec;
    for (const auto& entry :
         std::filesystem::directory_iterator(flags.get("corpus"), ec)) {
      if (entry.path().extension() == ".sancase") {
        paths.push_back(entry.path());
      }
    }
    std::sort(paths.begin(), paths.end());
    if (ec) {
      std::cerr << "corpus directory unreadable: " << flags.get("corpus")
                << " (" << ec.message() << ") — corpus scenarios skipped\n";
    }
    for (const auto& path : paths) {
      const verify::ScenarioCase c = verify::read_case_file(path.string());
      // Equivalence is defined on quiescent sessions; search_depth needs a
      // connected fabric with at least one switch.
      if (!c.quiescent() || !topo::connected(c.network) ||
          c.network.num_switches() == 0 || c.network.num_hosts() < 2) {
        continue;
      }
      Scenario s;
      s.name = "corpus/" + c.name;
      s.network = c.network;
      s.mapper_host = c.mapper_node();
      scenarios.push_back(std::move(s));
    }
  }

  const std::vector<int> windows =
      smoke ? std::vector<int>{1, 8} : std::vector<int>{1, 2, 4, 8, 16};

  std::cout << "=== Pipelined probing: map time vs outstanding-probe window "
               "===\n";
  std::vector<std::string> header{"scenario"};
  for (const int w : windows) {
    header.push_back("w=" + std::to_string(w) + " (ms)");
  }
  header.push_back("speedup@8");
  header.push_back("equiv");
  common::Table table(header);

  bench::JsonReport report("pipeline");
  bool ok = true;
  for (const Scenario& s : scenarios) {
    const mapper::MapResult serial = run_window(s, 1);
    std::vector<std::string> row{s.name};
    double speedup_at_8 = 1.0;
    bool equiv = true;
    for (const int w : windows) {
      const mapper::MapResult result = run_window(s, w);
      if (!(result.probes == serial.probes)) {
        std::cerr << s.name << " w=" << w
                  << ": probe counters diverge from serial\n";
        equiv = false;
      }
      if (!topo::isomorphic(result.map, serial.map)) {
        std::cerr << s.name << " w=" << w
                  << ": map is not isomorphic to the serial map\n";
        equiv = false;
      }
      if (w == 1 && result.elapsed != serial.elapsed) {
        std::cerr << s.name << ": window 1 elapsed " << result.elapsed
                  << " != serial " << serial.elapsed << "\n";
        equiv = false;
      }
      if (result.elapsed > serial.elapsed) {
        std::cerr << s.name << " w=" << w << ": elapsed " << result.elapsed
                  << " exceeds serial " << serial.elapsed << "\n";
        equiv = false;
      }
      const double speedup =
          result.elapsed.to_ms() > 0.0
              ? serial.elapsed.to_ms() / result.elapsed.to_ms()
              : 1.0;
      if (w == 8) {
        speedup_at_8 = speedup;
      }
      row.push_back(common::fmt(result.elapsed.to_ms(), 1));
      report.add(s.name, "window" + std::to_string(w) + "_ms",
                 result.elapsed.to_ms());
      report.add(s.name, "window" + std::to_string(w) + "_speedup", speedup);
    }
    report.add(s.name, "probes", static_cast<double>(serial.probes.total()));
    report.add(s.name, "equiv_ok", equiv ? 1 : 0);
    row.push_back(common::fmt(speedup_at_8, 2) + "x");
    row.push_back(equiv ? "ok" : "WRONG");
    table.add_row(row);
    ok = ok && equiv;
    if (s.timeout_heavy && speedup_at_8 < 3.0) {
      std::cerr << s.name << ": window-8 speedup " << speedup_at_8
                << "x is below the 3x acceptance bar\n";
      ok = false;
    }
  }
  std::cout << table << "\n";
  report.write();
  if (!ok) {
    std::cerr << "pipeline equivalence/speedup checks FAILED\n";
    return 1;
  }
  std::cout << "all windows: counters identical, maps isomorphic, w=1 exact"
            << "\n";
  return 0;
}
