// §6 (future work): mapping in the presence of application cross-traffic.
//
// "Although we have some evidence that the algorithm can oftentimes
// correctly map the network even in the face of heavy application
// cross-traffic, developing provably correct algorithms for on-line mapping
// remains a challenging area for future work."
//
// Cross-traffic only destroys probes (a blocked worm is forward-reset);
// it never forges responses, so the mapped graph can only *miss* parts of
// the network, never invent them. This bench sweeps the per-channel traffic
// intensity on subcluster C and reports, over repeated seeds, how often the
// map is still exact and how much of the network the average map covers.
#include <iostream>

#include "bench_util.hpp"
#include "common/flags.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

int main(int argc, char** argv) {
  using namespace sanmap;
  common::Flags flags;
  flags.define("runs", "10", "seeds per intensity");
  if (!flags.parse(argc, argv)) {
    return 0;
  }
  const auto runs = flags.get_int("runs");

  std::cout << "=== §6: mapping under application cross-traffic "
               "(subcluster C) ===\n";
  const topo::Topology network =
      topo::now_subcluster(topo::Subcluster::kC, "C");
  const topo::Topology expected = topo::core(network);

  common::Table table({"traffic intensity", "retries", "exact maps",
                       "hosts found", "links found", "probes", "time (ms)"});
  for (const double intensity : {0.0, 0.001, 0.005, 0.01, 0.02, 0.05, 0.1}) {
    for (const int retries : {0, 2}) {
      int exact = 0;
      common::Summary hosts;
      common::Summary links;
      common::Summary probes;
      common::Summary time_ms;
      for (std::int64_t run = 0; run < runs; ++run) {
        simnet::FaultModel faults;
        faults.traffic_intensity = intensity;
        probe::ProbeOptions options;
        options.retries = retries;
        const auto result = bench::run_berkeley(
            network, simnet::CollisionModel::kCutThrough, {}, options,
            faults, 500 + static_cast<std::uint64_t>(run));
        if (topo::isomorphic(result.map, expected)) {
          ++exact;
        }
        hosts.add(static_cast<double>(result.map.num_hosts()));
        links.add(static_cast<double>(result.map.num_wires()));
        probes.add(static_cast<double>(result.probes.total()));
        time_ms.add(result.elapsed.to_ms());
      }
      table.add_row(
          {common::fmt_percent(intensity, 1), std::to_string(retries),
           std::to_string(exact) + "/" + std::to_string(runs),
           common::fmt(hosts.mean(), 1) + "/" +
               std::to_string(network.num_hosts()),
           common::fmt(links.mean(), 1) + "/" +
               std::to_string(network.num_wires()),
           common::fmt(probes.mean(), 0), common::fmt(time_ms.mean(), 0)});
    }
  }
  std::cout << table
            << "\n(intensity = probability that one channel traversal hits "
               "foreign traffic; a probe crossing k channels survives with "
               "probability (1-p)^k)\n"
               "The map degrades gracefully — missing pieces, never wrong "
               "ones — matching the paper's \"oftentimes correct\" "
               "observation and its motivation for future work.\n";
  return 0;
}
