// Figures 3, 4 and 5: the subcluster component inventory and the
// automatically generated network maps of subcluster C and the full
// 100-node NOW.
//
// The paper presents these as rendered network diagrams; this bench
// regenerates the underlying data: the per-subcluster inventory table, the
// maps themselves (verified isomorphic to the ground truth), and Graphviz
// renderings written next to the binary.
#include <fstream>
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "topology/serialize.hpp"

int main() {
  using namespace sanmap;
  std::cout << "=== Figure 3: A, B, and C subcluster components ===\n";
  common::Table inventory({"Subcluster", "# interfaces", "# switches",
                           "# links", "paper", "generated"});
  const std::pair<topo::Subcluster, const char*> subclusters[] = {
      {topo::Subcluster::kA, "A"},
      {topo::Subcluster::kB, "B"},
      {topo::Subcluster::kC, "C"}};
  bool all_ok = true;
  for (const auto& [which, label] : subclusters) {
    const auto inv = topo::now_inventory(which);
    const topo::Topology t = topo::now_subcluster(which, label);
    const bool match = t.num_hosts() == inv.interfaces &&
                       t.num_switches() == inv.switches &&
                       t.num_wires() == inv.links;
    all_ok = all_ok && match;
    inventory.add_row({label, std::to_string(t.num_hosts()),
                       std::to_string(t.num_switches()),
                       std::to_string(t.num_wires()),
                       std::to_string(inv.interfaces) + "/" +
                           std::to_string(inv.switches) + "/" +
                           std::to_string(inv.links),
                       match ? "exact" : "MISMATCH"});
  }
  std::cout << inventory << "\n";

  const auto map_and_render = [&](const topo::Topology& network,
                                  const char* title, const char* dot_file) {
    std::cout << "=== " << title << " ===\n";
    const auto result = bench::run_berkeley(network);
    std::cout << "ground truth: " << network.num_hosts() << " hosts, "
              << network.num_switches() << " switches, "
              << network.num_wires() << " links\n";
    std::cout << "mapped      : " << result.map.num_hosts() << " hosts, "
              << result.map.num_switches() << " switches, "
              << result.map.num_wires() << " links ("
              << result.probes.total() << " probes, "
              << result.elapsed.str() << ")\n";
    const std::string ok = bench::verify(network, result);
    std::cout << "isomorphic  : " << ok << "\n";
    all_ok = all_ok && ok == "ok";
    std::ofstream out(dot_file);
    out << topo::to_dot(result.map);
    std::cout << "rendering   : wrote " << dot_file
              << " (render with: dot -Tsvg)\n\n";
  };

  map_and_render(topo::now_subcluster(topo::Subcluster::kC, "C"),
                 "Figure 4: map of subcluster C", "fig4_subcluster_c.dot");
  map_and_render(topo::now_cluster(),
                 "Figure 5: map of the 100-node NOW cluster",
                 "fig5_now100.dot");

  std::cout << (all_ok ? "RESULT: all inventories and maps verified\n"
                       : "RESULT: MISMATCH detected\n");
  return all_ok ? 0 : 1;
}
