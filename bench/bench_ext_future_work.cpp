// §6 future-work extensions, quantified: the four mapping strategies side
// by side on the C / C+A / C+A+B systems.
//
//   Berkeley    — the paper's algorithm on stock hardware (the baseline);
//   Randomized  — coupon-collecting wild probes + BFS completion
//                 (Vazirani's suggestion; needs the hit-a-host-too-soon
//                 firmware change);
//   Myricom     — the firmware mapper of §4 (stock hardware);
//   Identity    — self-identifying switches (§6's architectural support;
//                 identities are free, but port alignment still costs a
//                 comparison sweep per cross link, confirming the paper's
//                 caution that IDs alone do not trivialize the problem).
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "mapper/id_mapper.hpp"
#include "mapper/randomized_mapper.hpp"
#include "myricom/myricom_mapper.hpp"

int main() {
  using namespace sanmap;
  std::cout << "=== §6 extensions: four mapping strategies ===\n";
  common::Table table({"System", "strategy", "probes", "of which wild/align",
                       "time (ms)", "map"});
  for (const auto system :
       {topo::NowSystem::kC, topo::NowSystem::kCA, topo::NowSystem::kCAB}) {
    const topo::Topology network = topo::now_system(system);
    const topo::NodeId mapper_host = bench::mapper_host_of(network);
    const topo::Topology expected_core = topo::core(network);
    const int depth = topo::search_depth(network, mapper_host);

    simnet::HardwareExtensions ext;
    ext.self_identifying_switches = true;
    ext.hosts_answer_early_hits = true;

    {  // Berkeley (baseline)
      const auto result = bench::run_berkeley(network);
      table.add_row({topo::to_string(system), "Berkeley",
                     std::to_string(result.probes.total()), "-",
                     common::fmt(result.elapsed.to_ms(), 0),
                     bench::verify(network, result)});
    }
    {  // Randomized
      simnet::Network net(network, simnet::CollisionModel::kCutThrough,
                          simnet::CostModel{}, simnet::FaultModel{}, 1, ext);
      probe::ProbeEngine engine(net, mapper_host);
      mapper::RandomizedConfig config;
      config.base.search_depth = depth;
      config.wild_probes = static_cast<int>(network.num_hosts()) * 4;
      const auto result = mapper::RandomizedMapper(engine, config).run();
      table.add_row(
          {topo::to_string(system), "Randomized (wild+BFS)",
           std::to_string(result.probes.total()),
           std::to_string(result.probes.wild_probes) + " wild",
           common::fmt(result.elapsed.to_ms(), 0),
           topo::isomorphic(result.map, expected_core) ? "ok" : "WRONG"});
    }
    {  // Myricom
      simnet::Network net(network);
      const auto result =
          myricom::MyricomMapper(net, mapper_host).run();
      table.add_row(
          {topo::to_string(system), "Myricom (firmware)",
           std::to_string(result.probes.total()),
           std::to_string(result.probes.compare_probes) + " comp",
           common::fmt(result.elapsed.to_ms(), 0),
           topo::isomorphic(result.map, network) ? "ok" : "WRONG"});
    }
    {  // Identity
      simnet::Network net(network, simnet::CollisionModel::kCutThrough,
                          simnet::CostModel{}, simnet::FaultModel{}, 1, ext);
      probe::ProbeEngine engine(net, mapper_host);
      const auto result = mapper::IdMapper(engine).run();
      table.add_row(
          {topo::to_string(system), "Self-identifying switches",
           std::to_string(result.probes.total()),
           std::to_string(result.alignment_probes) + " align",
           common::fmt(result.elapsed.to_ms(), 0),
           topo::isomorphic(result.map, network) ? "ok" : "WRONG"});
    }
    table.add_rule();
  }
  std::cout << table
            << "\nNotes: Berkeley/Randomized map N - F (host-anchored "
               "merging); Myricom/Identity map all of N (identity needs no "
               "hosts). Identity still pays alignment probes per cross "
               "link — §6's point that self-identification alone does not "
               "completely solve the problem.\n";
  return 0;
}
