// Ablation of the §3.3 probe-elimination optimizations.
//
// The paper: "We suspect that the total number of messages can be reduced
// by factors of 2 or more based upon our experience with cleverly choosing
// the sequence that switch ports are probed." This bench quantifies the two
// optimizations independently on the C / C+A / C+A+B systems:
//
//   * port-order heuristic: adaptive +-1, +-2, ... order plus skipping
//     turns that are infeasible for every consistent entry port;
//   * known-port skipping: never re-probe a turn whose answer was inherited
//     from a merged replicate.
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"

int main() {
  using namespace sanmap;
  std::cout << "=== Ablation: §3.3 probe-elimination optimizations ===\n";
  common::Table table({"System", "config", "host", "switch", "total",
                       "time (ms)", "vs naive", "map"});
  struct Config {
    const char* name;
    bool port_order;
    bool skip_known;
  };
  const Config configs[] = {
      {"naive (pseudocode order)", false, false},
      {"+ known-port skip", false, true},
      {"+ port-order heuristic", true, false},
      {"+ both (default)", true, true},
  };
  for (const auto system :
       {topo::NowSystem::kC, topo::NowSystem::kCA, topo::NowSystem::kCAB}) {
    const topo::Topology network = topo::now_system(system);
    std::uint64_t naive_total = 0;
    for (const Config& c : configs) {
      mapper::MapperConfig config;
      config.port_order_heuristic = c.port_order;
      config.skip_known_ports = c.skip_known;
      const auto result = bench::run_berkeley(
          network, simnet::CollisionModel::kCutThrough, config);
      if (naive_total == 0) {
        naive_total = result.probes.total();
      }
      table.add_row(
          {topo::to_string(system), c.name,
           std::to_string(result.probes.host_probes),
           std::to_string(result.probes.switch_probes),
           std::to_string(result.probes.total()),
           common::fmt(result.elapsed.to_ms(), 0),
           common::fmt(static_cast<double>(naive_total) /
                           static_cast<double>(result.probes.total()),
                       2) + "x fewer",
           bench::verify(network, result)});
    }
    table.add_rule();
  }
  std::cout << table
            << "\npaper's claim: clever port ordering can reduce messages "
               "by 2x or more\n";
  return 0;
}
