// Sharded federated mapping: wall-clock, probe load, and boundary work vs
// region count (DESIGN.md §13).
//
// A multi-pod fabric (pods of fig5-like leaf/root clusters joined by a
// host-free spine layer) is mapped monolithically once, then federated
// with regions ∈ {1, 2, 4, 8} (greedy auto-partitioning anchored at the
// canonical mapper host). For every run the bench records the simulated
// wall-clock (max over the concurrent region sessions plus the merge
// charge), the total probe load across regions, and the boundary work
// (switches the partitioner put on region boundaries, cross-region fusions
// the boundary resolver performed).
//
// Self-gating acceptance criteria — any miss exits nonzero so CI can run
// this as a gate:
//  * every merged map is Theorem-1 isomorphic to the monolithic map;
//  * every federated result is certified (zero uncertified merged maps);
//  * federation at 4 regions beats the monolithic wall-clock by >= 2x.
//
// Results are emitted to BENCH_federation.json via JsonReport.
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "common/flags.hpp"
#include "common/table.hpp"
#include "federation/federated_mapper.hpp"

namespace {

using namespace sanmap;

}  // namespace

int main(int argc, char** argv) {
  common::Flags flags;
  flags.define("pods", "8", "multi-pod fabric size (>= 8 for the full sweep)");
  flags.define("overlap", "2", "partition overlap margin");
  flags.define("smoke", "false", "CI mode: sweep only 1 and 4 regions");
  if (!flags.parse(argc, argv)) {
    return 0;
  }
  const bool smoke = flags.get_bool("smoke");

  // 8 pods forces pod_roots = 1 (the spine's 8-port budget); each pod root
  // still reaches every spine, so no pod hangs off a bridge and the spine
  // layer survives coring.
  topo::MultiPodOptions shape;
  shape.pods = static_cast<int>(flags.get_int("pods"));
  shape.leaf_switches_per_pod = 4;
  shape.pod_roots = 1;
  shape.hosts_per_leaf = 2;
  shape.uplinks = 1;
  shape.spines = 2;
  const topo::Topology fabric = topo::multi_pod(shape);
  std::cout << "fabric: " << shape.pods << " pods, " << fabric.num_hosts()
            << " hosts, " << fabric.num_switches() << " switches, "
            << fabric.num_wires() << " links\n";

  const mapper::MapResult mono = bench::run_berkeley(fabric);
  const bool mono_ok = bench::verify(fabric, mono) == "ok";
  std::cout << "monolithic: " << mono.probes.total() << " probes, "
            << mono.elapsed.str() << (mono_ok ? "" : " (WRONG MAP)") << "\n\n";

  const std::vector<int> sweep =
      smoke ? std::vector<int>{1, 4} : std::vector<int>{1, 2, 4, 8};

  common::Table table({"regions", "wall-clock", "speedup", "probes",
                       "boundary sw", "fusions", "iso", "certified"});
  bench::JsonReport report("federation");
  report.add("monolithic", "wallclock_ms", mono.elapsed.to_ms());
  report.add("monolithic", "probes",
             static_cast<double>(mono.probes.total()));

  bool ok = mono_ok;
  double speedup_at_4 = 0.0;
  for (const int regions : sweep) {
    federation::FederationConfig config;
    config.spec.auto_regions = regions;
    config.spec.anchor_host = fabric.name(bench::mapper_host_of(fabric));
    config.partition.overlap_margin =
        static_cast<int>(flags.get_int("overlap"));
    federation::FederatedMapper federated(fabric, config);
    const federation::FederatedResult result = federated.run();

    const bool iso = topo::isomorphic(result.map, mono.map);
    const double speedup = result.elapsed.to_ms() > 0.0
                               ? mono.elapsed.to_ms() / result.elapsed.to_ms()
                               : 0.0;
    if (regions == 4) {
      speedup_at_4 = speedup;
    }
    const std::string name = "regions" + std::to_string(regions);
    table.add_row({std::to_string(regions), result.elapsed.str(),
                   common::fmt(speedup, 2) + "x",
                   std::to_string(result.total_probes),
                   std::to_string(result.boundary_switches),
                   std::to_string(result.boundary_conflicts),
                   iso ? "ok" : "WRONG",
                   result.certified ? "yes" : "NO"});
    report.add(name, "wallclock_ms", result.elapsed.to_ms());
    report.add(name, "speedup", speedup);
    report.add(name, "probes", static_cast<double>(result.total_probes));
    report.add(name, "boundary_switches",
               static_cast<double>(result.boundary_switches));
    report.add(name, "boundary_conflicts",
               static_cast<double>(result.boundary_conflicts));
    report.add(name, "certified", result.certified ? 1 : 0);
    report.add(name, "iso_to_monolithic", iso ? 1 : 0);

    if (!iso) {
      std::cerr << "regions=" << regions
                << ": merged map is not isomorphic to the monolithic map\n";
      ok = false;
    }
    if (!result.certified) {
      std::cerr << "regions=" << regions << ": merged map UNCERTIFIED";
      for (const std::string& reason : result.uncertified_reasons) {
        std::cerr << "\n  - " << reason;
      }
      std::cerr << "\n";
      ok = false;
    }
  }
  std::cout << table << "\n";
  report.add("gate", "speedup_at_4", speedup_at_4);
  report.write();

  if (speedup_at_4 < 2.0) {
    std::cerr << "federation speedup at 4 regions " << speedup_at_4
              << "x is below the 2x acceptance bar\n";
    ok = false;
  }
  if (!ok) {
    std::cerr << "federation benchmark gates FAILED\n";
    return 1;
  }
  std::cout << "all region counts: isomorphic to monolithic, certified; "
               "4-region speedup "
            << common::fmt(speedup_at_4, 2) << "x\n";
  return 0;
}
