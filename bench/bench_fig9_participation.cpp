// Figure 9: time to map the 40-switch network as the number of hosts
// running (passive) mapper daemons grows from 1 to 100.
//
// The paper's top curve adds mappers subcluster by subcluster (step
// discontinuities when the first responder of a new subcluster appears);
// the bottom curve adds them in random order. Headline observations to
// reproduce in shape: a large speedup from 1 to 100 (paper: ~8x), random
// placement within 2x of the minimum after ~15 mappers and within 1.5x
// after ~20.
#include <algorithm>
#include <iostream>

#include "bench_util.hpp"
#include "common/flags.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"

int main(int argc, char** argv) {
  using namespace sanmap;
  common::Flags flags;
  flags.define("step", "5", "hosts added between samples");
  flags.define("seed", "11", "seed for the random placement order");
  if (!flags.parse(argc, argv)) {
    return 0;
  }

  const topo::Topology network = topo::now_cluster();
  const topo::NodeId mapper_host = bench::mapper_host_of(network);

  // Ordered fill: C's hosts first, then A's, then B's (generation order
  // already groups by subcluster; sorting by name keeps it explicit).
  std::vector<topo::NodeId> ordered = network.hosts();
  std::stable_sort(ordered.begin(), ordered.end(),
                   [&](topo::NodeId a, topo::NodeId b) {
                     // C first (the mapper's subcluster), then A, then B.
                     const auto rank = [&](topo::NodeId n) {
                       switch (network.name(n)[0]) {
                         case 'C':
                           return 0;
                         case 'A':
                           return 1;
                         default:
                           return 2;
                       }
                     };
                     return rank(a) < rank(b);
                   });
  const auto promote = [&](std::vector<topo::NodeId>& hosts) {
    const auto it = std::find(hosts.begin(), hosts.end(), mapper_host);
    std::rotate(hosts.begin(), it, it + 1);
  };
  promote(ordered);
  std::vector<topo::NodeId> random = network.hosts();
  common::Rng rng(static_cast<std::uint64_t>(flags.get_int("seed")));
  rng.shuffle(random);
  promote(random);

  const auto time_with = [&](const std::vector<topo::NodeId>& order,
                             std::size_t count) {
    probe::ProbeOptions options;
    options.participants.assign(order.begin(),
                                order.begin() + static_cast<long>(count));
    return bench::run_berkeley(network, simnet::CollisionModel::kCutThrough,
                               {}, options)
        .elapsed.to_ms();
  };

  std::cout << "=== Figure 9: map time vs number of hosts running a mapper "
               "===\n";
  common::Table table({"mappers", "subcluster order (ms)",
                       "random order (ms)"});
  const auto step = static_cast<std::size_t>(flags.get_int("step"));
  double first = 0;
  double final_time = 0;
  double random_at_15 = 0;
  double random_at_20 = 0;
  for (std::size_t count = 1; count <= network.num_hosts();
       count = std::min(network.num_hosts(),
                        count == 1 ? step : count + step)) {
    const double t_ordered = time_with(ordered, count);
    const double t_random = time_with(random, count);
    if (count == 1) {
      first = t_ordered;
    }
    if (count <= 15) {
      random_at_15 = t_random;
    }
    if (count <= 20) {
      random_at_20 = t_random;
    }
    final_time = t_random;
    table.add_row({std::to_string(count), common::fmt(t_ordered, 1),
                   common::fmt(t_random, 1)});
    if (count == network.num_hosts()) {
      break;
    }
  }
  std::cout << table << "\n";
  std::cout << "speedup 1 -> 100 mappers : "
            << common::fmt(first / final_time, 1) << "x  (paper: ~8x)\n";
  std::cout << "random @15 vs minimum    : "
            << common::fmt(random_at_15 / final_time, 2)
            << "x  (paper: within 2x)\n";
  std::cout << "random @20 vs minimum    : "
            << common::fmt(random_at_20 / final_time, 2)
            << "x  (paper: within 1.5x)\n";
  return 0;
}
