// Shared helpers for the bench binaries (one binary per paper table/figure;
// see DESIGN.md §4 for the experiment index).
#pragma once

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "mapper/berkeley_mapper.hpp"
#include "probe/probe_engine.hpp"
#include "simnet/network.hpp"
#include "topology/algorithms.hpp"
#include "topology/generators.hpp"
#include "topology/isomorphism.hpp"

namespace sanmap::bench {

/// The mapper host used throughout the evaluation: the utility machine
/// attached to a root of subcluster C ("a machine dedicated to running
/// system services (e.g., nameservers or the active mapper process)").
inline topo::NodeId mapper_host_of(const topo::Topology& topo) {
  if (const auto util = topo.find_host("C.util")) {
    return *util;
  }
  return topo.hosts().front();
}

/// Runs the Berkeley mapper with the ground-truth search depth.
inline mapper::MapResult run_berkeley(
    const topo::Topology& network,
    simnet::CollisionModel collision = simnet::CollisionModel::kCutThrough,
    mapper::MapperConfig config = {}, probe::ProbeOptions probe_options = {},
    simnet::FaultModel faults = {}, std::uint64_t fault_seed = 1) {
  const topo::NodeId mapper_host = mapper_host_of(network);
  simnet::Network net(network, collision, simnet::CostModel{}, faults,
                      fault_seed);
  probe::ProbeEngine engine(net, mapper_host, std::move(probe_options));
  config.search_depth = topo::search_depth(network, mapper_host);
  return mapper::BerkeleyMapper(engine, config).run();
}

/// "ok" / "WRONG" against the Theorem 1 oracle.
inline std::string verify(const topo::Topology& network,
                          const mapper::MapResult& result) {
  return topo::isomorphic(result.map, topo::core(network)) ? "ok" : "WRONG";
}

/// Machine-readable results next to the human tables: each bench collects
/// (name, metric, value) samples and writes them to BENCH_<bench>.json so CI
/// and trend tooling can diff runs without scraping stdout.
class JsonReport {
 public:
  explicit JsonReport(std::string bench) : bench_(std::move(bench)) {}

  void add(const std::string& name, const std::string& metric, double value) {
    entries_.push_back({name, metric, value});
  }

  std::string path() const { return "BENCH_" + bench_ + ".json"; }

  /// Renders the collected entries as a JSON document.
  std::string str() const {
    std::ostringstream out;
    out << "{\n  \"bench\": \"" << escape(bench_) << "\",\n  \"entries\": [";
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      out << (i == 0 ? "" : ",") << "\n    {\"name\": \""
          << escape(entries_[i].name) << "\", \"metric\": \""
          << escape(entries_[i].metric) << "\", \"value\": "
          << number(entries_[i].value) << "}";
    }
    out << "\n  ]\n}\n";
    return out.str();
  }

  /// Writes the document to BENCH_<bench>.json in the working directory.
  void write() const {
    std::ofstream out(path());
    if (!out) {
      std::cerr << "cannot write " << path() << "\n";
      return;
    }
    out << str();
    std::cerr << "wrote " << path() << " (" << entries_.size()
              << " entries)\n";
  }

 private:
  struct Entry {
    std::string name;
    std::string metric;
    double value;
  };

  static std::string escape(const std::string& s) {
    std::string out;
    for (const char c : s) {
      if (c == '"' || c == '\\') {
        out.push_back('\\');
      }
      out.push_back(c);
    }
    return out;
  }

  // JSON has no NaN/Inf literals; integral values print without a spurious
  // fraction so diffs stay stable.
  static std::string number(double v) {
    if (v != v || v > 1e308 || v < -1e308) {
      return "null";
    }
    std::ostringstream out;
    if (v == static_cast<double>(static_cast<long long>(v))) {
      out << static_cast<long long>(v);
    } else {
      out.precision(6);
      out << v;
    }
    return out.str();
  }

  std::string bench_;
  std::vector<Entry> entries_;
};

}  // namespace sanmap::bench
