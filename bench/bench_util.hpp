// Shared helpers for the bench binaries (one binary per paper table/figure;
// see DESIGN.md §4 for the experiment index).
#pragma once

#include <string>

#include "mapper/berkeley_mapper.hpp"
#include "probe/probe_engine.hpp"
#include "simnet/network.hpp"
#include "topology/algorithms.hpp"
#include "topology/generators.hpp"
#include "topology/isomorphism.hpp"

namespace sanmap::bench {

/// The mapper host used throughout the evaluation: the utility machine
/// attached to a root of subcluster C ("a machine dedicated to running
/// system services (e.g., nameservers or the active mapper process)").
inline topo::NodeId mapper_host_of(const topo::Topology& topo) {
  if (const auto util = topo.find_host("C.util")) {
    return *util;
  }
  return topo.hosts().front();
}

/// Runs the Berkeley mapper with the ground-truth search depth.
inline mapper::MapResult run_berkeley(
    const topo::Topology& network,
    simnet::CollisionModel collision = simnet::CollisionModel::kCutThrough,
    mapper::MapperConfig config = {}, probe::ProbeOptions probe_options = {},
    simnet::FaultModel faults = {}, std::uint64_t fault_seed = 1) {
  const topo::NodeId mapper_host = mapper_host_of(network);
  simnet::Network net(network, collision, simnet::CostModel{}, faults,
                      fault_seed);
  probe::ProbeEngine engine(net, mapper_host, std::move(probe_options));
  config.search_depth = topo::search_depth(network, mapper_host);
  return mapper::BerkeleyMapper(engine, config).run();
}

/// "ok" / "WRONG" against the Theorem 1 oracle.
inline std::string verify(const topo::Topology& network,
                          const mapper::MapResult& result) {
  return topo::isomorphic(result.map, topo::core(network)) ? "ok" : "WRONG";
}

}  // namespace sanmap::bench
