// §5.5/§6 routing study: UP*/DOWN* quality and its alternatives.
//
// Quantifies the paper's qualitative claims: UP*/DOWN* concentrates traffic
// about the root; its goodness is topology-dependent; the dominant-switch
// relabeling recovers unusable switches; root placement matters ("a
// strategically placed cable or two can re-root the UP*/DOWN* tree"); and
// the spanning-tree baseline shows what ignoring redundant links costs.
// Route-table distribution (§5.5's final step) is timed at the end.
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "routing/congestion.hpp"
#include "routing/deadlock.hpp"
#include "routing/distribute.hpp"
#include "routing/routes.hpp"
#include "routing/tree_routes.hpp"

int main() {
  using namespace sanmap;
  std::cout << "=== Routing strategy comparison (mean hops / max channel "
               "load / root share) ===\n";
  common::Table table({"Topology", "strategy", "mean hops", "max hops",
                       "max load", "root share", "acyclic"});

  struct Case {
    std::string name;
    topo::Topology network;
  };
  common::Rng rng(123);
  std::vector<Case> cases;
  cases.push_back({"NOW-100", topo::now_cluster()});
  // (torus 4x4 is omitted: C4 x C4 is graph-isomorphic to the 4-cube.)
  cases.push_back({"torus 5x4", topo::torus(5, 4, 1)});
  cases.push_back({"hypercube(4,1)", topo::hypercube(4, 1)});
  cases.push_back({"random 12s/16h", topo::random_irregular(12, 16, 8, rng)});
  {
    // A diamond with a host-free far corner: the textbook locally dominant
    // switch. Without the §5.5 relabeling every cross route squeezes
    // through the root; with it the corner carries half the load.
    topo::Topology diamond;
    const topo::NodeId r = diamond.add_switch("r");
    const topo::NodeId x = diamond.add_switch("x");
    const topo::NodeId y = diamond.add_switch("y");
    const topo::NodeId m = diamond.add_switch("m");
    diamond.connect(r, 0, x, 0);
    diamond.connect(r, 1, y, 0);
    diamond.connect(x, 1, m, 0);
    diamond.connect(y, 1, m, 1);
    for (int i = 0; i < 4; ++i) {
      const topo::NodeId hx = diamond.add_host("hx" + std::to_string(i));
      diamond.connect(hx, 0, x, static_cast<topo::Port>(2 + i));
      const topo::NodeId hy = diamond.add_host("hy" + std::to_string(i));
      diamond.connect(hy, 0, y, static_cast<topo::Port>(2 + i));
    }
    cases.push_back({"diamond (dominant m)", diamond});
  }

  for (const auto& c : cases) {
    const auto add = [&](const char* label,
                         const routing::RoutingResult& routes) {
      const auto stats = routing::channel_load(c.network, routes);
      const auto analysis = routing::analyze_routes(c.network, routes);
      table.add_row({c.name, label, common::fmt(routes.mean_hops(), 2),
                     std::to_string(routes.max_hops()),
                     std::to_string(stats.max_channel_load),
                     common::fmt_percent(stats.root_traffic_share),
                     analysis.deadlock_free ? "yes" : "NO"});
    };

    add("UP*/DOWN* (far root)", routing::compute_updown_routes(c.network));

    routing::UpDownOptions no_fix;
    no_fix.fix_dominant_switches = false;
    add("UP*/DOWN* (no dominant fix)",
        routing::compute_updown_routes(c.network, no_fix));

    // Deliberately bad root: a leaf-most switch (nearest to hosts).
    routing::UpDownOptions bad_root;
    {
      int best = std::numeric_limits<int>::max();
      for (const topo::NodeId s : c.network.switches()) {
        int nearest = std::numeric_limits<int>::max();
        const auto dist = topo::bfs_distances(c.network, s);
        for (const topo::NodeId h : c.network.hosts()) {
          nearest = std::min(nearest, dist[h]);
        }
        if (nearest < best) {
          best = nearest;
          bad_root.root = s;
        }
      }
    }
    add("UP*/DOWN* (bad root)",
        routing::compute_updown_routes(c.network, bad_root));

    add("spanning tree", routing::compute_tree_routes(c.network));
    table.add_rule();
  }
  std::cout << table << "\n";

  std::cout << "=== §5.5 route-table distribution (NOW-100, master = "
               "C.util) ===\n";
  const topo::Topology now = topo::now_cluster();
  const auto routes = routing::compute_updown_routes(now);
  simnet::Network net(now);
  const auto dist = routing::distribute_tables(
      net, routes, *now.find_host("C.util"));
  std::cout << "tables   : " << dist.messages << " messages, " << dist.bytes
            << " bytes, " << dist.elapsed.str() << ", "
            << (dist.complete ? "all delivered" : "INCOMPLETE") << "\n";
  return dist.complete ? 0 : 1;
}
