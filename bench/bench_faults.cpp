// Timed fault injection and the self-healing robust session (the ISSUE's
// acceptance scenario, extending §5's fault-tolerance discussion).
//
// A FaultSchedule kills two links mid-mapping — one bridge that severs a
// tail subcluster, one redundant mesh link — while 10% cross-traffic
// destroys probes. The one-shot Berkeley pass returns a stale map (it saw
// wires that died under it); the robust session converges to the map of
// the *surviving* network (Theorem 1's N - F with F taken at convergence
// time), reporting the cut-off region by name. Two further sections show
// flapping-link quarantine and the route-health repair loop driving
// distributed UP*/DOWN* routes back to 100% delivery. Everything is
// deterministic under the fixed seeds.
#include <iostream>

#include "bench_util.hpp"
#include "common/flags.hpp"
#include "common/table.hpp"
#include "mapper/robust_mapper.hpp"
#include "routing/route_health.hpp"
#include "routing/updown.hpp"
#include "simnet/fault_schedule.hpp"

namespace {

using namespace sanmap;

/// The mapper's component of the surviving topology, stripped of its
/// separated set: what any mapper can be held to once the schedule fired.
topo::Topology surviving_core(const topo::Topology& full,
                              const simnet::FaultSchedule& schedule,
                              common::SimTime at, topo::NodeId mapper_host) {
  topo::Topology alive = schedule.surviving(full, at);
  std::vector<int> component;
  topo::components(alive, component);
  for (const topo::NodeId n : alive.nodes()) {
    if (component[n] != component[mapper_host]) {
      alive.remove_node(n);
    }
  }
  return topo::core(alive);
}

topo::Topology mesh_with_tail(topo::WireId& bridge, topo::WireId& mesh_link) {
  topo::Topology t = topo::mesh(3, 3, 1);
  const topo::NodeId tail_switch = t.add_switch("tail-s");
  const topo::NodeId tail_host = t.add_host("tail-h");
  bridge = t.connect_any(tail_switch, t.switches()[4]);
  t.connect_any(tail_host, tail_switch);
  mesh_link = bridge;
  for (topo::Port p = 0; p < t.port_count(t.switches()[0]); ++p) {
    const auto far = t.peer(t.switches()[0], p);
    if (far && t.is_switch(far->node)) {
      mesh_link = *t.wire_at(t.switches()[0], p);
      break;
    }
  }
  return t;
}

void acceptance_section(std::int64_t runs, std::uint64_t base_seed) {
  std::cout << "=== two link deaths mid-mapping, 10% cross-traffic ===\n";
  topo::WireId bridge = 0;
  topo::WireId mesh_link = 0;
  const topo::Topology t = mesh_with_tail(bridge, mesh_link);
  const topo::NodeId mapper_host = t.hosts().front();

  mapper::MapperConfig base;
  base.search_depth = topo::search_depth(t, mapper_host) + 2;

  // An undisturbed pass — same traffic model and retry level, no schedule —
  // to express fault instants as fractions of the real pass duration.
  common::SimTime pass_time;
  {
    simnet::FaultModel faults;
    faults.traffic_intensity = 0.10;
    simnet::Network undisturbed(t, simnet::CollisionModel::kCutThrough,
                                simnet::CostModel{}, faults, base_seed);
    probe::ProbeEngine engine(undisturbed, mapper_host);
    engine.set_retries(4);
    pass_time = mapper::BerkeleyMapper(engine, base).run().elapsed;
  }
  std::cout << "undisturbed pass: " << pass_time.str()
            << "; bridge dies at the given fraction of it, the redundant "
               "mesh link 10% later\n";

  common::Table table({"fault at", "seed", "one-shot", "robust", "passes",
                       "sweeps", "probes", "cut off", "quarantined"});
  for (const double fraction : {0.25, 0.50, 0.75}) {
    for (std::int64_t run = 0; run < runs; ++run) {
      const std::uint64_t seed = base_seed + static_cast<std::uint64_t>(run);
      simnet::FaultSchedule schedule;
      schedule.link_down(bridge,
                         common::SimTime::from_us(pass_time.to_us() * fraction));
      schedule.link_down(
          mesh_link,
          common::SimTime::from_us(pass_time.to_us() * (fraction + 0.10)));
      simnet::FaultModel faults;
      faults.traffic_intensity = 0.10;

      const auto make_net = [&] {
        simnet::Network net(t, simnet::CollisionModel::kCutThrough,
                            simnet::CostModel{}, faults, seed);
        net.attach_faults(&schedule);
        return net;
      };

      // One-shot Berkeley: correct only for a failure set stable over the
      // run, which this schedule violates by construction.
      std::string one_shot;
      {
        simnet::Network net = make_net();
        probe::ProbeEngine engine(net, mapper_host);
        engine.set_retries(4);
        const auto result = mapper::BerkeleyMapper(engine, base).run();
        one_shot = topo::isomorphic(
                       result.map, surviving_core(t, schedule, result.elapsed,
                                                  mapper_host))
                       ? "exact"
                       : "stale";
      }

      simnet::Network net = make_net();
      probe::ProbeEngine engine(net, mapper_host);
      mapper::RobustConfig config;
      config.base = base;
      config.initial_retries = 4;
      const auto result = mapper::RobustMapper(engine, config).run();
      const bool exact = topo::isomorphic(
          result.map,
          surviving_core(t, schedule, result.elapsed, mapper_host));
      table.add_row({common::fmt(fraction, 2) + " pass",
                     std::to_string(seed),
                     one_shot,
                     result.converged && exact ? "exact" : "WRONG",
                     std::to_string(result.passes),
                     std::to_string(result.sweep_rounds),
                     std::to_string(result.probes_used),
                     std::to_string(result.cut_off.size()),
                     std::to_string(result.quarantined_ports.size())});
    }
  }
  std::cout << table
            << "(cut off counts the nodes the session reported severed — "
               "the tail switch and host once the bridge died under it)\n\n";
}

void flapping_section() {
  std::cout << "=== flapping-link quarantine ===\n";
  topo::Topology t;
  const topo::NodeId h0 = t.add_host("m");
  const topo::NodeId h1 = t.add_host("b");
  const topo::NodeId s0 = t.add_switch();
  const topo::NodeId s1 = t.add_switch();
  t.connect(h0, 0, s0, 0);
  t.connect(s0, 1, s1, 0);
  const topo::WireId flapper = t.connect(s0, 2, s1, 1);
  t.connect(s1, 2, h1, 0);

  simnet::FaultSchedule schedule;
  schedule.flapping_link(flapper, common::SimTime::ms(64), 0.5);

  simnet::Network net(t);
  net.attach_faults(&schedule);
  probe::ProbeEngine engine(net, h0);
  mapper::RobustConfig config;
  config.base.search_depth = topo::search_depth(t, h0) + 2;
  // Quiet fabric: confirmed transitions are real state changes, so skip
  // the second-chance remap the default threshold reserves for traffic.
  config.quarantine_threshold = 2;
  const auto result = mapper::RobustMapper(engine, config).run();

  topo::Topology stable = t;
  stable.disconnect(flapper);
  std::cout << "parallel cables, one flapping (64 ms period, 50% duty): "
            << (result.converged ? "converged" : "DID NOT CONVERGE") << " in "
            << result.passes << " pass(es), " << result.sweep_rounds
            << " sweep round(s), " << result.probes_used << " probes\n"
            << "map matches the stable fabric: "
            << (topo::isomorphic(result.map, topo::core(stable)) ? "yes"
                                                                 : "NO")
            << "\n";
  for (const auto& key : result.quarantined_ports) {
    std::cout << "quarantined port " << key << "\n";
  }
  std::cout << "\n";
}

void route_health_section() {
  std::cout << "=== route health: break, detect, remap, redistribute ===\n";
  topo::Topology t = topo::torus(3, 3, 1);
  const topo::NodeId mapper_host = t.hosts().front();
  topo::WireId victim = t.wires().front();
  for (const topo::WireId w : t.wires()) {
    const topo::Wire& wire = t.wire(w);
    if (t.is_switch(wire.a.node) && t.is_switch(wire.b.node)) {
      victim = w;
      break;
    }
  }

  simnet::FaultSchedule schedule;
  schedule.link_down(victim, common::SimTime::ms(150));
  simnet::Network net(t);
  net.attach_faults(&schedule);
  probe::ProbeEngine engine(net, mapper_host);

  mapper::MapperConfig base;
  base.search_depth = topo::search_depth(t, mapper_host);
  const auto initial = mapper::BerkeleyMapper(engine, base).run();
  std::cout << "initial map at " << initial.elapsed.str()
            << " (link dies at 150 ms)\n";

  routing::SelfHealConfig heal;
  heal.master_name = t.name(mapper_host);
  const routing::RemapFn remap = [&](common::SimTime& clock) {
    engine.set_clock_base(clock);
    engine.reset();
    mapper::RobustConfig robust;
    robust.base = base;
    auto session = mapper::RobustMapper(engine, robust).run();
    clock = session.elapsed;
    return std::move(session.map);
  };
  const auto healed = routing::self_heal_routes(net, initial.map, heal,
                                                remap, common::SimTime::ms(160));

  const auto routes = routing::compute_updown_routes(healed.map, heal.updown,
                                                     heal.route_seed);
  const auto replay =
      routing::check_routes(net, routes, healed.map, healed.elapsed);
  std::cout << "broken routes seen: " << healed.total_broken << " over "
            << healed.iterations << " iteration(s); "
            << (healed.converged ? "converged" : "DID NOT CONVERGE")
            << "; final delivery "
            << common::fmt_percent(replay.delivery_ratio(), 1) << " ("
            << replay.routes_checked << " routes on the surviving fabric)\n";
}

}  // namespace

int main(int argc, char** argv) {
  common::Flags flags;
  flags.define("runs", "3", "seeds per fault instant in the acceptance table");
  flags.define("seed", "900",
               "base traffic seed; run r uses seed + r, so any WRONG row can "
               "be replayed exactly with --runs 1 --seed <printed seed>");
  if (!flags.parse(argc, argv)) {
    return 0;
  }
  std::cout << "=== timed faults and the self-healing robust session ===\n\n";
  acceptance_section(flags.get_int("runs"),
                     static_cast<std::uint64_t>(flags.get_int("seed")));
  flapping_section();
  route_health_section();
  return 0;
}
