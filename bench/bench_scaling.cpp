// Wall-clock scaling microbenchmarks (google-benchmark).
//
// Beyond the paper: how the implementation itself scales with network size
// — mapping (Berkeley and Myricom), the correctness oracle, Q computation,
// and UP*/DOWN* route computation. Counters report simulated probes per
// iteration so algorithmic cost and wall-clock cost can be separated.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "mapper/berkeley_mapper.hpp"
#include "myricom/myricom_mapper.hpp"
#include "probe/probe_engine.hpp"
#include "routing/deadlock.hpp"
#include "routing/routes.hpp"
#include "simnet/network.hpp"
#include "topology/algorithms.hpp"
#include "topology/generators.hpp"
#include "topology/isomorphism.hpp"

namespace {

using namespace sanmap;

topo::Topology fat_tree_of_size(int leaf_switches) {
  topo::FatTreeOptions options;
  options.levels = 3;
  options.leaf_switches = leaf_switches;
  options.switches_per_upper_level = std::max(2, leaf_switches / 2);
  options.hosts_per_leaf = 4;
  options.uplinks = 2;
  return topo::fat_tree(options);
}

void BM_BerkeleyMapFatTree(benchmark::State& state) {
  const topo::Topology network =
      fat_tree_of_size(static_cast<int>(state.range(0)));
  const topo::NodeId mapper_host = network.hosts().front();
  const int depth = topo::search_depth(network, mapper_host);
  std::uint64_t probes = 0;
  for (auto _ : state) {
    simnet::Network net(network);
    probe::ProbeEngine engine(net, mapper_host);
    mapper::MapperConfig config;
    config.search_depth = depth;
    const auto result = mapper::BerkeleyMapper(engine, config).run();
    benchmark::DoNotOptimize(result.map.num_wires());
    probes = result.probes.total();
  }
  state.counters["nodes"] = static_cast<double>(network.num_nodes());
  state.counters["probes"] = static_cast<double>(probes);
}
BENCHMARK(BM_BerkeleyMapFatTree)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_BerkeleyMapNow100(benchmark::State& state) {
  const topo::Topology network = topo::now_cluster();
  const topo::NodeId mapper_host = *network.find_host("C.util");
  const int depth = topo::search_depth(network, mapper_host);
  for (auto _ : state) {
    simnet::Network net(network);
    probe::ProbeEngine engine(net, mapper_host);
    mapper::MapperConfig config;
    config.search_depth = depth;
    benchmark::DoNotOptimize(
        mapper::BerkeleyMapper(engine, config).run().map.num_wires());
  }
}
BENCHMARK(BM_BerkeleyMapNow100);

void BM_MyricomMapFatTree(benchmark::State& state) {
  const topo::Topology network =
      fat_tree_of_size(static_cast<int>(state.range(0)));
  const topo::NodeId mapper_host = network.hosts().front();
  std::uint64_t probes = 0;
  for (auto _ : state) {
    simnet::Network net(network);
    const auto result =
        myricom::MyricomMapper(net, mapper_host).run();
    benchmark::DoNotOptimize(result.map.num_wires());
    probes = result.probes.total();
  }
  state.counters["probes"] = static_cast<double>(probes);
}
BENCHMARK(BM_MyricomMapFatTree)->Arg(4)->Arg(8)->Arg(16);

void BM_IsomorphismOracle(benchmark::State& state) {
  common::Rng rng(1);
  const topo::Topology a = topo::random_irregular(
      static_cast<int>(state.range(0)), static_cast<int>(state.range(0)),
      static_cast<int>(state.range(0)) / 2, rng);
  const topo::Topology b = a;
  for (auto _ : state) {
    benchmark::DoNotOptimize(topo::isomorphic(a, b));
  }
}
BENCHMARK(BM_IsomorphismOracle)->Arg(16)->Arg(32)->Arg(64);

void BM_QValue(benchmark::State& state) {
  const topo::Topology network =
      fat_tree_of_size(static_cast<int>(state.range(0)));
  const topo::NodeId mapper_host = network.hosts().front();
  for (auto _ : state) {
    benchmark::DoNotOptimize(topo::q_value(network, mapper_host));
  }
}
BENCHMARK(BM_QValue)->Arg(4)->Arg(8)->Arg(16);

void BM_UpDownRoutes(benchmark::State& state) {
  const topo::Topology network =
      fat_tree_of_size(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    const auto routes = routing::compute_updown_routes(network);
    benchmark::DoNotOptimize(routes.routes.size());
  }
  state.counters["pairs"] = static_cast<double>(
      network.num_hosts() * (network.num_hosts() - 1));
}
BENCHMARK(BM_UpDownRoutes)->Arg(4)->Arg(8)->Arg(16);

void BM_DeadlockAnalysis(benchmark::State& state) {
  const topo::Topology network = topo::now_cluster();
  const auto routes = routing::compute_updown_routes(network);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        routing::analyze_routes(network, routes).deadlock_free);
  }
}
BENCHMARK(BM_DeadlockAnalysis);

void BM_ProbeRoundTrip(benchmark::State& state) {
  const topo::Topology network = topo::now_cluster();
  simnet::Network net(network);
  const topo::NodeId mapper_host = *network.find_host("C.util");
  probe::ProbeEngine engine(net, mapper_host);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.switch_probe(simnet::Route{1}));
  }
}
BENCHMARK(BM_ProbeRoundTrip);

}  // namespace

BENCHMARK_MAIN();
