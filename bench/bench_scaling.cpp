// Megafabric scaling: probes and wall-clock vs switch count m
// (DESIGN.md §14).
//
// Sweeps the Berkeley mapper over generated megafabrics — tapered
// multi-level fat trees (the primary O(m) family) plus dragonfly-ish
// irregular meshes for shape variety — and records, per size, the probe
// count, the wall-clock mapping time, and probes/m. Sessions use the
// analytic generous_search_depth (3W + 3): depth overshoot sends no extra
// probes, and the exact min-cost-flow Q / all-pairs-BFS D are quadratic-plus
// at 5k switches.
//
// Self-gating (nonzero exit on violation, so CI runs it as an acceptance
// gate):
//
//  * probes/m across the fat-tree sweep stays flat within 15% of the
//    smallest size — mapping is O(m) in probes, not just asymptotically;
//  * every mapped core carries exactly the fabric's switch/host/wire counts
//    (these generators core to themselves, so Theorem 1 demands the whole
//    fabric back);
//  * the 5k-switch fat tree maps in under 10 s of wall clock (full mode).
//
// --smoke shrinks the sweep (~100-400 switches) for CI; the flatness and
// exact-count gates still apply. Results land in BENCH_scaling.json.
#include <chrono>
#include <cmath>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/flags.hpp"
#include "common/table.hpp"
#include "topology/isomorphism.hpp"

namespace {

using namespace sanmap;

struct Sample {
  std::string name;
  std::size_t switches = 0;
  std::uint64_t probes = 0;
  double wall_ms = 0.0;
  bool counts_ok = false;
};

/// Widths 8L/8, 8L/16, ... — a leaf count of roughly 8m/15 yields a
/// four-level tree of about m switches total.
topo::Topology fat_tree_of(int total_switches) {
  topo::MegaFatTreeOptions options;
  options.leaf_switches = std::max(2, total_switches * 8 / 15);
  return topo::mega_fat_tree(options);
}

Sample map_fabric(const std::string& name, const topo::Topology& network,
                  bool check_isomorphic) {
  Sample s;
  s.name = name;
  s.switches = network.num_switches();
  const topo::NodeId mapper_host = network.hosts().front();
  const int depth = topo::generous_search_depth(network);
  const auto start = std::chrono::steady_clock::now();
  simnet::Network net(network);
  probe::ProbeEngine engine(net, mapper_host);
  mapper::MapperConfig config;
  config.search_depth = depth;
  const mapper::MapResult result = mapper::BerkeleyMapper(engine, config).run();
  const auto stop = std::chrono::steady_clock::now();
  s.wall_ms =
      std::chrono::duration<double, std::milli>(stop - start).count();
  s.probes = result.probes.total();
  // These fabrics have no host-free region behind a switch-bridge, so the
  // mapped core must be the whole network. Exact counts are a cheap strong
  // check at 5k switches; full isomorphism is reserved for the smallest size.
  s.counts_ok = result.map.num_switches() == network.num_switches() &&
                result.map.num_hosts() == network.num_hosts() &&
                result.map.num_wires() == network.num_wires();
  if (check_isomorphic && s.counts_ok) {
    s.counts_ok = topo::isomorphic(result.map, topo::core(network));
  }
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  common::Flags flags;
  flags.define("smoke", "false", "CI mode: shrink the sweep to ~100-400 "
                                 "switches and skip the 5k gate");
  flags.define("tolerance", "0.15",
               "allowed probes/m drift across the fat-tree sweep");
  if (!flags.parse(argc, argv)) {
    return 0;
  }
  const bool smoke = flags.get_bool("smoke");
  const double tolerance = flags.get_double("tolerance");

  const std::vector<int> fat_tree_sizes =
      smoke ? std::vector<int>{100, 200, 400}
            : std::vector<int>{500, 1000, 2000, 4000};

  std::cout << "=== Megafabric scaling: probes and wall clock vs switches "
               "===\n";
  common::Table table({"fabric", "switches", "probes", "probes/m",
                       "wall (ms)", "counts"});
  bench::JsonReport report("scaling");
  bool ok = true;

  std::vector<Sample> sweep;
  for (std::size_t i = 0; i < fat_tree_sizes.size(); ++i) {
    const topo::Topology network = fat_tree_of(fat_tree_sizes[i]);
    const std::string name =
        "fat-tree/" + std::to_string(network.num_switches());
    sweep.push_back(map_fabric(name, network, i == 0));
  }
  // Dragonfly-ish shape variety: reported, but the flatness gate applies to
  // the fat-tree family (each family has its own probes/m constant).
  {
    topo::DragonflyishOptions options;
    options.groups = smoke ? 8 : 32;
    common::Rng rng(1);
    const topo::Topology network = topo::dragonfly_ish(options, rng);
    sweep.push_back(map_fabric(
        "dragonfly/" + std::to_string(network.num_switches()), network, true));
  }

  const double ppm0 =
      static_cast<double>(sweep.front().probes) /
      static_cast<double>(sweep.front().switches);
  for (const Sample& s : sweep) {
    const double ppm =
        static_cast<double>(s.probes) / static_cast<double>(s.switches);
    const bool in_family = s.name.rfind("fat-tree/", 0) == 0;
    const double drift = std::abs(ppm - ppm0) / ppm0;
    if (in_family && drift > tolerance) {
      std::cerr << s.name << ": probes/m " << ppm << " drifts " << drift * 100
                << "% from the smallest size (" << ppm0 << ") — over the "
                << tolerance * 100 << "% bar\n";
      ok = false;
    }
    if (!s.counts_ok) {
      std::cerr << s.name << ": mapped core does not match the fabric\n";
      ok = false;
    }
    table.add_row({s.name, std::to_string(s.switches),
                   std::to_string(s.probes), common::fmt(ppm, 2),
                   common::fmt(s.wall_ms, 1), s.counts_ok ? "ok" : "WRONG"});
    report.add(s.name, "switches", static_cast<double>(s.switches));
    report.add(s.name, "probes", static_cast<double>(s.probes));
    report.add(s.name, "probes_per_switch", ppm);
    report.add(s.name, "wall_ms", s.wall_ms);
    report.add(s.name, "counts_ok", s.counts_ok ? 1 : 0);
  }

  if (!smoke) {
    // The headline gate: a 5k-switch fabric in single-digit seconds.
    const topo::Topology network = fat_tree_of(5000);
    const Sample s = map_fabric(
        "fat-tree/" + std::to_string(network.num_switches()), network, false);
    const double wall_s = s.wall_ms / 1000.0;
    table.add_row({s.name, std::to_string(s.switches),
                   std::to_string(s.probes),
                   common::fmt(static_cast<double>(s.probes) /
                                   static_cast<double>(s.switches),
                               2),
                   common::fmt(s.wall_ms, 1), s.counts_ok ? "ok" : "WRONG"});
    report.add(s.name, "switches", static_cast<double>(s.switches));
    report.add(s.name, "probes", static_cast<double>(s.probes));
    report.add(s.name, "wall_ms", s.wall_ms);
    report.add(s.name, "counts_ok", s.counts_ok ? 1 : 0);
    if (!s.counts_ok) {
      std::cerr << s.name << ": mapped core does not match the fabric\n";
      ok = false;
    }
    if (wall_s >= 10.0) {
      std::cerr << s.name << ": " << wall_s
                << " s wall clock — over the 10 s bar\n";
      ok = false;
    }
  }

  std::cout << table << "\n";
  report.write();
  if (!ok) {
    std::cerr << "scaling gates FAILED\n";
    return 1;
  }
  std::cout << "probes/m flat within " << tolerance * 100
            << "%, cores exact" << (smoke ? " (smoke)" : ", 5k under 10 s")
            << "\n";
  return 0;
}
