// Map service under concurrent load (the map-catalog / query-engine ISSUE's
// acceptance scenario).
//
// Section 1 sweeps the route-query batch engine over 1/2/4/8 worker threads
// against one published snapshot and reports queries/sec and speedup. The
// acceptance target (>= 4x at 8 threads) needs real cores: the speedup is
// bounded by hardware_concurrency, which is recorded in the JSON so CI can
// gate on it only where the hardware allows.
//
// Section 2 is the torn-read hunt: readers hammer run_batch while a writer
// republishes freshly recomputed route tables (a remap per round) and
// periodically offers a deadlock-unsafe table. Every answer must come from a
// published epoch with a complete route; the unsafe tables must all bounce
// off the catalog's safety gate.
//
// Results also land in BENCH_bench_service.json (see JsonReport).
#include <chrono>
#include <iostream>
#include <set>
#include <thread>

#include "bench_util.hpp"
#include "common/flags.hpp"
#include "common/table.hpp"
#include "service/map_catalog.hpp"
#include "service/query_engine.hpp"
#include "service/snapshot.hpp"

namespace {

using namespace sanmap;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

std::vector<service::RouteQuery> all_pairs_repeated(const topo::Topology& t,
                                                    std::size_t total) {
  std::vector<service::RouteQuery> queries;
  queries.reserve(total);
  const auto hosts = t.hosts();
  while (queries.size() < total) {
    for (const topo::NodeId a : hosts) {
      for (const topo::NodeId b : hosts) {
        if (a == b || queries.size() >= total) {
          continue;
        }
        queries.push_back({t.name(a), t.name(b)});
      }
    }
  }
  return queries;
}

void throughput_section(const topo::Topology& t,
                        const std::vector<service::RouteQuery>& queries,
                        bench::JsonReport& json) {
  service::MapCatalog catalog;
  catalog.publish(service::build_snapshot(t, {}, common::SimTime{}));
  const service::RouteQueryEngine engine(catalog);

  std::cout << "== batch route-query throughput ==\n"
            << queries.size() << " queries over "
            << catalog.current()->routes.routes.size()
            << " routes, chunk 256, best of 3 runs\n\n";
  common::Table table({"threads", "time", "queries/s", "speedup"});
  double base_qps = 0.0;
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    common::ThreadPool pool(threads);
    double best_qps = 0.0;
    for (int run = 0; run < 3; ++run) {
      const auto start = std::chrono::steady_clock::now();
      const auto answers = engine.run_batch(queries, pool, 256);
      const double elapsed = seconds_since(start);
      for (const auto& answer : answers) {
        if (!answer.found) {
          std::cerr << "MISSED QUERY — batch engine returned a non-answer\n";
          std::exit(1);
        }
      }
      best_qps = std::max(
          best_qps, static_cast<double>(queries.size()) / elapsed);
    }
    if (threads == 1) {
      base_qps = best_qps;
    }
    const double speedup = best_qps / base_qps;
    table.add_row({std::to_string(threads),
                   common::fmt(static_cast<double>(queries.size()) /
                                   best_qps * 1e3, 1) + " ms",
                   common::fmt(best_qps / 1e6, 2) + "M",
                   common::fmt(speedup, 2) + "x"});
    json.add("throughput",
             "qps_" + std::to_string(threads) + "_threads", best_qps);
    json.add("throughput",
             "speedup_" + std::to_string(threads) + "_threads", speedup);
  }
  std::cout << table << "\n";
}

void churn_section(const topo::Topology& t,
                   const std::vector<service::RouteQuery>& queries,
                   std::int64_t rounds, bench::JsonReport& json) {
  std::cout << "== queries during epoch churn ==\n"
            << rounds << " republishes (fresh route recompute each), every "
            << "3rd offered table corrupted to deadlock-unsafe\n\n";
  service::MapCatalog catalog;
  catalog.publish(service::build_snapshot(t, {}, common::SimTime{}));
  const service::RouteQueryEngine engine(catalog);

  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> accepted{0};
  std::thread writer([&] {
    for (std::int64_t round = 1; round <= rounds; ++round) {
      service::SnapshotOptions options;
      options.route_seed = static_cast<std::uint64_t>(round) + 1;
      options.source = "remap";
      service::MapSnapshot next = service::build_snapshot(
          t, options, common::SimTime::ms(round));
      if (round % 3 == 0) {
        // A table that fails verification must never become current.
        next.deadlock_free = false;
      }
      const auto result =
          catalog.publish_if_current(std::move(next), catalog.epoch());
      if (result.published()) {
        accepted.fetch_add(1, std::memory_order_relaxed);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    done.store(true, std::memory_order_release);
  });

  common::ThreadPool pool(4);
  std::set<std::uint64_t> epochs_seen;
  std::uint64_t answered = 0;
  const auto start = std::chrono::steady_clock::now();
  while (!done.load(std::memory_order_acquire)) {
    const auto answers = engine.run_batch(queries, pool, 256);
    for (const auto& answer : answers) {
      if (!answer.found || answer.epoch == 0) {
        std::cerr << "TORN READ — answer without a published epoch\n";
        std::exit(1);
      }
      epochs_seen.insert(answer.epoch);
    }
    answered += answers.size();
  }
  const double elapsed = seconds_since(start);
  writer.join();
  for (const std::uint64_t epoch : epochs_seen) {
    const auto snapshot = catalog.at_epoch(epoch);
    if (snapshot && !snapshot->deadlock_free) {
      std::cerr << "UNSAFE TABLE SERVED — epoch " << epoch << "\n";
      std::exit(1);
    }
  }

  const auto stats = catalog.stats();
  common::Table table({"what", "value"});
  table.add_row({"answers served",
                 std::to_string(answered) + " (all found, epoch-stamped)"});
  table.add_row({"queries/s during churn",
                 common::fmt(static_cast<double>(answered) / elapsed / 1e6,
                             2) + "M"});
  table.add_row({"epochs observed by readers",
                 std::to_string(epochs_seen.size())});
  table.add_row({"tables published", std::to_string(stats.published)});
  table.add_row({"unsafe tables rejected",
                 std::to_string(stats.rejected_unsafe)});
  std::cout << table << "\n";

  json.add("churn", "qps",
           static_cast<double>(answered) / elapsed);
  json.add("churn", "epochs_observed",
           static_cast<double>(epochs_seen.size()));
  json.add("churn", "published", static_cast<double>(stats.published));
  json.add("churn", "unsafe_rejected",
           static_cast<double>(stats.rejected_unsafe));
  if (stats.rejected_unsafe == 0 || epochs_seen.size() < 2) {
    // The run must demonstrate both the gate and at least one live swap.
    std::cerr << "CHURN SECTION DID NOT EXERCISE THE CATALOG\n";
    std::exit(1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  common::Flags flags;
  flags.define("queries", "40000", "batch size for the throughput sweep");
  flags.define("churn-rounds", "12", "republishes in the churn section");
  if (!flags.parse(argc, argv)) {
    return 0;
  }

  const topo::Topology t = topo::torus(4, 4, 2);
  const auto queries = all_pairs_repeated(
      t, static_cast<std::size_t>(flags.get_int("queries")));

  bench::JsonReport json("bench_service");
  json.add("env", "hardware_concurrency",
           static_cast<double>(std::thread::hardware_concurrency()));

  throughput_section(t, queries, json);
  churn_section(t, queries, flags.get_int("churn-rounds"), json);
  json.write();
  return 0;
}
