// Figure 10: the Myricom Algorithm's performance summary on the same three
// systems, plus the §5.4 comparison against the Berkeley Algorithm.
//
//   Paper (for reference):
//     System   loop  host   sw.  comp  total  time(ms)
//     C         134   713   152   450   1449      1414
//     C+A       283  1484   329  1234   3330      2197
//     C+A+B     424  2293   611  5089   8413      4009
//
//   §5.4: Myricom sends 3.2 / 3.6 / 5.4 times the Berkeley message count
//   and takes ~5.5 / 3.9 / 3.9 times as long on C / C+A / C+A+B.
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "myricom/myricom_mapper.hpp"

int main() {
  using namespace sanmap;
  std::cout << "=== Figure 10: Myricom Algorithm performance summary ===\n";
  common::Table table({"System", "loop", "host", "sw.", "comp", "total",
                       "time (ms)", "map"});
  common::Table comparison({"System", "msg ratio vs Berkeley",
                            "time ratio vs Berkeley"});
  for (const auto system :
       {topo::NowSystem::kC, topo::NowSystem::kCA, topo::NowSystem::kCAB}) {
    const topo::Topology network = topo::now_system(system);
    const topo::NodeId mapper_host = bench::mapper_host_of(network);

    simnet::Network net(network);
    const auto myri = myricom::MyricomMapper(net, mapper_host).run();
    // The Myricom map covers all of N (comparison probes need no hosts).
    const bool ok = topo::isomorphic(myri.map, network);
    const auto& p = myri.probes;
    table.add_row({topo::to_string(system), std::to_string(p.loop_probes),
                   std::to_string(p.host_probes),
                   std::to_string(p.switch_probes),
                   std::to_string(p.compare_probes),
                   std::to_string(p.total()),
                   common::fmt(myri.elapsed.to_ms(), 0),
                   ok ? "ok" : "WRONG"});

    const auto berkeley = bench::run_berkeley(network);
    comparison.add_row(
        {topo::to_string(system),
         common::fmt(static_cast<double>(p.total()) /
                         static_cast<double>(berkeley.probes.total()),
                     1) + "x",
         common::fmt(myri.elapsed.to_ms() / berkeley.elapsed.to_ms(), 1) +
             "x"});
  }
  std::cout << table
            << "\npaper:  C 134/713/152/450 = 1449 in 1414 ms   C+A "
               "283/1484/329/1234 = 3330 in 2197 ms   C+A+B "
               "424/2293/611/5089 = 8413 in 4009 ms\n\n";
  std::cout << "=== §5.4: Myricom vs Berkeley ===\n"
            << comparison
            << "\npaper:  messages 3.2x / 3.6x / 5.4x,  time 5.5x / 3.9x / "
               "3.9x\n";
  return 0;
}
