// Incremental remapping economics: what periodic verification costs when
// nothing changed, and what a local repair costs per kind of change,
// versus the from-scratch remap the paper's system performs.
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "mapper/incremental.hpp"

namespace {

using namespace sanmap;

mapper::IncrementalResult run_incremental(const topo::Topology& network,
                                          topo::NodeId mapper_host,
                                          const topo::Topology& previous) {
  simnet::Network net(network);
  probe::ProbeEngine engine(net, mapper_host);
  mapper::IncrementalConfig config;
  config.base.search_depth = topo::search_depth(network, mapper_host);
  return mapper::IncrementalMapper(engine, previous, config).run();
}

}  // namespace

int main() {
  std::cout << "=== Incremental remapping: verification vs full remap ===\n";
  common::Table steady({"System", "full remap probes", "verify probes",
                        "savings", "full (ms)", "verify (ms)"});
  for (const auto system :
       {topo::NowSystem::kC, topo::NowSystem::kCA, topo::NowSystem::kCAB}) {
    const topo::Topology network = topo::now_system(system);
    const topo::NodeId mapper_host = bench::mapper_host_of(network);
    const auto full = bench::run_berkeley(network);
    const auto inc = run_incremental(network, mapper_host, full.map);
    steady.add_row(
        {topo::to_string(system), std::to_string(full.probes.total()),
         std::to_string(inc.verification_probes),
         common::fmt(static_cast<double>(full.probes.total()) /
                         static_cast<double>(inc.verification_probes),
                     1) + "x",
         common::fmt(full.elapsed.to_ms(), 0),
         common::fmt(inc.elapsed.to_ms(), 0)});
  }
  std::cout << steady << "\n";

  std::cout << "=== Repair cost per change (subcluster C) ===\n";
  common::Table repair_table({"change", "verify+repair probes",
                              "full remap probes", "savings", "map"});
  const topo::Topology base =
      topo::now_subcluster(topo::Subcluster::kC, "C");
  const topo::NodeId mapper_host = bench::mapper_host_of(base);
  const topo::Topology previous = bench::run_berkeley(base).map;

  struct Change {
    const char* name;
    topo::Topology network;
  };
  std::vector<Change> changes;
  {
    topo::Topology t = base;
    for (const topo::NodeId s : t.switches()) {
      if (t.free_port(s)) {
        t.connect_any(t.add_host("new-host"), s);
        break;
      }
    }
    changes.push_back({"host added", t});
  }
  {
    topo::Topology t = base;
    t.remove_node(*t.find_host("C.h7"));
    changes.push_back({"host removed", t});
  }
  {
    topo::Topology t = base;
    for (const topo::WireId w : t.wires()) {
      const topo::Wire& wire = t.wire(w);
      if (t.is_switch(wire.a.node) && t.is_switch(wire.b.node)) {
        topo::Topology probe = t;
        probe.disconnect(w);
        if (topo::connected(probe)) {
          t.disconnect(w);
          break;
        }
      }
    }
    changes.push_back({"link removed", t});
  }
  {
    topo::Topology t = base;
    std::vector<topo::NodeId> free;
    for (const topo::NodeId s : t.switches()) {
      if (t.free_port(s)) {
        free.push_back(s);
      }
    }
    const topo::NodeId sw = t.add_switch("grown");
    t.connect_any(sw, free[0]);
    t.connect_any(sw, free[1]);
    t.connect_any(t.add_host("grown-host"), sw);
    changes.push_back({"switch added", t});
  }

  for (const Change& change : changes) {
    const auto inc = run_incremental(change.network, mapper_host, previous);
    const auto full = bench::run_berkeley(change.network);
    const bool ok =
        topo::isomorphic(inc.map, topo::core(change.network));
    repair_table.add_row(
        {change.name, std::to_string(inc.probes.total()),
         std::to_string(full.probes.total()),
         common::fmt(static_cast<double>(full.probes.total()) /
                         static_cast<double>(inc.probes.total()),
                     1) + "x",
         ok ? "ok" : "WRONG"});
  }
  std::cout << repair_table
            << "\n(verify+repair = one echo per known wire + a probe per "
               "recorded-free port, then re-exploration of only the "
               "switches a discrepancy touched)\n";
  return 0;
}
