// Figure 7: mapping times (min / avg / max over repeated runs) for the C,
// C+A and C+A+B systems under both operational modes.
//
//   Paper (for reference):
//     System   one master (ms)      election (ms)
//     C        248 / 256 / 265      277 / 278 / 282
//     C+A      499 / 522 / 555      569 / 577 / 587
//     C+A+B    981 / 1011 / 1208    1065 / 1298 / 3332
//
// Per-run variance comes from a few percent of per-probe overhead jitter
// (OS scheduling noise on the mapper host) plus, in election mode, the
// random contention window before the winner emerges. All times are
// simulated milliseconds from the calibrated cost model (DESIGN.md §6.4).
#include <iostream>

#include "bench_util.hpp"
#include "common/flags.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

int main(int argc, char** argv) {
  using namespace sanmap;
  common::Flags flags;
  flags.define("runs", "10", "runs per cell");
  flags.define("jitter", "0.07", "per-probe overhead jitter fraction");
  flags.define("seed", "1000",
               "base seed; run r jitters with seed + r and elects with "
               "seed + 1000 + r, so a WRONG cell replays with --runs 1 "
               "--seed <printed seed>");
  if (!flags.parse(argc, argv)) {
    return 0;
  }
  const auto runs = flags.get_int("runs");
  const double jitter = flags.get_double("jitter");
  const auto base_seed = static_cast<std::uint64_t>(flags.get_int("seed"));

  std::cout << "=== Figure 7: mapping times, one master vs election ===\n";
  common::Table table(
      {"System", "time(ms), one master min/avg/max",
       "time(ms), election min/avg/max", "map"});
  for (const auto system :
       {topo::NowSystem::kC, topo::NowSystem::kCA, topo::NowSystem::kCAB}) {
    const topo::Topology network = topo::now_system(system);
    common::Summary master;
    common::Summary election;
    std::string ok = "ok";
    for (std::int64_t run = 0; run < runs; ++run) {
      probe::ProbeOptions options;
      options.jitter = jitter;
      options.jitter_seed = base_seed + static_cast<std::uint64_t>(run);
      const auto m = bench::run_berkeley(
          network, simnet::CollisionModel::kCutThrough, {}, options);
      master.add(m.elapsed.to_ms());
      if (bench::verify(network, m) != "ok") {
        ok = "WRONG (seed " + std::to_string(options.jitter_seed) + ")";
      }

      options.election = true;
      options.election_seed = base_seed + 1000 + static_cast<std::uint64_t>(run);
      const auto e = bench::run_berkeley(
          network, simnet::CollisionModel::kCutThrough, {}, options);
      election.add(e.elapsed.to_ms());
    }
    table.add_row({topo::to_string(system), master.min_avg_max(0),
                   election.min_avg_max(0), ok});
  }
  std::cout << table
            << "\npaper:  C 248/256/265 | 277/278/282   C+A 499/522/555 | "
               "569/577/587   C+A+B 981/1011/1208 | 1065/1298/3332\n";
  return 0;
}
