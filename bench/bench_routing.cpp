// Engine shoot-out: UP*/DOWN* (BFS order) vs the DFS-order load-aware
// engine, raw and through the RouteOptimizer, on the paper's NOW cluster
// (fig5) and the megafabric generators.
//
// §5.5 names the known UP*/DOWN* weaknesses — "increased congestion about
// the root" and strong topology dependence. The DFS engine routes over a
// different total order with a load-aware tie-break, and the optimizer
// re-selects among legal alternatives; this bench quantifies what that buys:
// per-engine channel-load distributions (max/mean), root funneling, and
// path-length histograms.
//
// Self-gating (exit 1 on regression):
//  * every engine variant must certify (deadlock-free by the 3-color DFS,
//    order-compliant, and Mendlovic–Matias acyclic) on every bench topology
//    AND on every corpus scenario + both paper figures;
//  * on fig5 (NOW-100), the DFS engine — raw and optimized — must cut the
//    max channel load vs raw UP*/DOWN*, with the mean held within 2% (the
//    deliverable is the hotspot cut; the mean is total-hops-bound and moves
//    only in the noise).
//
// Flags: --smoke shrinks the megafabrics so CI finishes in seconds.
#include <algorithm>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "routing/congestion.hpp"
#include "routing/deadlock.hpp"
#include "routing/engine.hpp"
#include "routing/optimizer.hpp"
#include "verify/scenario_case.hpp"

namespace {

using namespace sanmap;

struct Variant {
  std::string name;
  routing::EngineKind engine;
  bool optimize;
};

const std::vector<Variant> kVariants = {
    {"updown", routing::EngineKind::kUpDown, false},
    {"updown+opt", routing::EngineKind::kUpDown, true},
    {"dfs", routing::EngineKind::kDfs, false},
    {"dfs+opt", routing::EngineKind::kDfs, true},
};

/// Routes over the mapper-visible component, compacted — the same map a
/// scenario's mapper would hand the router.
topo::Topology routable_component(const topo::Topology& t) {
  topo::Topology local = t;
  std::vector<int> component;
  topo::components(local, component);
  const topo::NodeId anchor = local.hosts().front();
  for (const topo::NodeId n : local.nodes()) {
    if (component[n] != component[anchor]) {
      local.remove_node(n);
    }
  }
  return local.compacted();
}

struct Measured {
  routing::CongestionStats load;
  double mean_hops = 0.0;
  int max_hops = 0;
  /// hops -> route count.
  std::map<int, std::size_t> histogram;
  bool certified = false;
  std::size_t mm_iterations = 0;
};

Measured measure(const topo::Topology& t, const Variant& v) {
  routing::RoutingResult routes = routing::compute_routes(t, v.engine);
  if (v.optimize) {
    routing::optimize_routes(t, routes);
  }
  Measured m;
  m.load = routing::channel_load(t, routes);
  m.mean_hops = routes.mean_hops();
  m.max_hops = routes.max_hops();
  for (const auto& [key, route] : routes.routes) {
    ++m.histogram[static_cast<int>(route.hops())];
  }
  const auto paths = routing::route_channel_paths(t, routes);
  const auto analysis = routing::analyze_channel_paths(t, paths);
  const auto mm = routing::check_mm_condition(t, paths);
  m.mm_iterations = mm.iterations;
  m.certified =
      analysis.deadlock_free && mm.holds && routing::updown_compliant(routes);
  return m;
}

std::string histogram_str(const std::map<int, std::size_t>& h) {
  std::string out;
  for (const auto& [hops, count] : h) {
    if (!out.empty()) {
      out += " ";
    }
    out += std::to_string(hops) + ":" + std::to_string(count);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    }
  }

  std::cout << "=== routing engines: UP*/DOWN* (BFS) vs DFS load-aware, raw "
               "and optimized ===\n";
  bench::JsonReport report("routing");

  struct Case {
    std::string name;
    topo::Topology network;
  };
  std::vector<Case> cases;
  cases.push_back({"fig4-subcluster-C",
                   topo::now_subcluster(topo::Subcluster::kC, "C")});
  cases.push_back({"fig5-NOW-100", topo::now_cluster()});
  {
    topo::MegaFatTreeOptions mft;
    mft.leaf_switches = smoke ? 32 : 128;
    mft.hosts_per_leaf = 1;
    cases.push_back({"mega-fat-tree", topo::mega_fat_tree(mft)});
    common::Rng rng(7);
    topo::DragonflyishOptions dfly;
    dfly.groups = smoke ? 4 : 8;
    dfly.switches_per_group = 4;
    dfly.hosts_per_group = 2;
    cases.push_back({"dragonfly-ish", topo::dragonfly_ish(dfly, rng)});
    topo::MultiPodOptions pods;
    pods.pods = smoke ? 3 : 6;
    if (!smoke) {
      // Dense spine wiring caps pods * pod_roots at 8; window the spine
      // links instead so six pods fit.
      pods.spines = 4;
      pods.spine_uplinks = 2;
    }
    cases.push_back({"multi-pod", topo::multi_pod(pods)});
  }

  common::Table table({"Topology", "engine", "max load", "mean load",
                       "root share", "mean hops", "max", "deps/mm iters",
                       "certified"});
  bool all_certified = true;
  // fig5 loads for the self-gate.
  std::size_t fig5_updown_max = 0;
  double fig5_updown_mean = 0.0;
  std::map<std::string, Measured> fig5;
  for (const auto& c : cases) {
    for (const Variant& v : kVariants) {
      const Measured m = measure(c.network, v);
      all_certified = all_certified && m.certified;
      table.add_row({c.name, v.name, std::to_string(m.load.max_channel_load),
                     common::fmt(m.load.mean_channel_load, 2),
                     common::fmt(m.load.root_traffic_share, 3),
                     common::fmt(m.mean_hops, 2), std::to_string(m.max_hops),
                     std::to_string(m.mm_iterations),
                     m.certified ? "yes" : "NO"});
      const std::string key = c.name + "/" + v.name;
      report.add(key, "max_channel_load",
                 static_cast<double>(m.load.max_channel_load));
      report.add(key, "mean_channel_load", m.load.mean_channel_load);
      report.add(key, "root_traffic_share", m.load.root_traffic_share);
      report.add(key, "mean_hops", m.mean_hops);
      report.add(key, "max_hops", m.max_hops);
      report.add(key, "certified", m.certified ? 1 : 0);
      for (const auto& [hops, count] : m.histogram) {
        report.add(key, "paths_with_" + std::to_string(hops) + "_hops",
                   static_cast<double>(count));
      }
      if (c.name == "fig5-NOW-100") {
        fig5[v.name] = m;
        if (v.name == "updown") {
          fig5_updown_max = m.load.max_channel_load;
          fig5_updown_mean = m.load.mean_channel_load;
        }
      }
    }
  }
  std::cout << table << "\n";
  for (const auto& [name, m] : fig5) {
    std::cout << "fig5 " << name << " path-length histogram: "
              << histogram_str(m.histogram) << "\n";
  }

  // Certification sweep over the scenario corpus (includes both paper
  // figures as fig4-subcluster-c.sancase + the fig5 case above): the DFS
  // engine must certify everywhere UP*/DOWN* does.
  std::size_t corpus_cases = 0;
  bool corpus_certified = true;
  namespace fs = std::filesystem;
  std::vector<fs::path> case_files;
  for (const auto& entry : fs::directory_iterator(fs::path(SANMAP_CORPUS_DIR))) {
    if (entry.path().extension() == ".sancase") {
      case_files.push_back(entry.path());
    }
  }
  std::sort(case_files.begin(), case_files.end());
  for (const fs::path& path : case_files) {
    const verify::ScenarioCase scenario =
        verify::read_case_file(path.string());
    const topo::Topology local = routable_component(scenario.network);
    if (local.num_switches() < 1 || local.num_hosts() < 1) {
      continue;
    }
    ++corpus_cases;
    for (const Variant& v : kVariants) {
      const Measured m = measure(local, v);
      if (!m.certified) {
        corpus_certified = false;
        std::cout << "CORPUS FAILURE: " << path.filename().string() << " / "
                  << v.name << " did not certify\n";
      }
    }
  }
  std::cout << "corpus: " << corpus_cases << " scenario cases, all variants "
            << (corpus_certified ? "certified" : "FAILED to certify") << "\n";
  report.add("corpus", "cases", static_cast<double>(corpus_cases));
  report.add("corpus", "all_certified", corpus_certified ? 1 : 0);

  // Self-gates.
  bool gates_ok = all_certified && corpus_certified && corpus_cases > 0;
  for (const std::string name : {"dfs", "dfs+opt"}) {
    const Measured& m = fig5.at(name);
    const bool cuts_max = m.load.max_channel_load < fig5_updown_max;
    const bool holds_mean =
        m.load.mean_channel_load <= fig5_updown_mean * 1.02;
    if (!cuts_max || !holds_mean) {
      std::cout << "GATE FAILURE: fig5 " << name << " max "
                << m.load.max_channel_load << " vs updown " << fig5_updown_max
                << ", mean " << m.load.mean_channel_load << " vs "
                << fig5_updown_mean << "\n";
      gates_ok = false;
    }
  }
  report.add("gate", "passed", gates_ok ? 1 : 0);
  report.write();
  std::cout << (gates_ok
                    ? "RESULT: all variants certified everywhere; DFS cuts "
                      "the fig5 max channel load vs raw UP*/DOWN*\n"
                    : "RESULT: FAILURE\n");
  return gates_ok ? 0 : 1;
}
