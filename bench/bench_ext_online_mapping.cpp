// §6 online mapping with scheduled (interval-based) cross-traffic.
//
// Unlike bench_crosstraffic's Bernoulli model, here the cross-traffic is
// actual worms: each flow occupies every channel on its path for a concrete
// window, probes wait behind them (adding latency) and die only when a
// blockage outlasts the 55 ms forward-reset. The question is the paper's:
// how far can load grow before the map degrades, and what does retrying
// buy? With realistic short messages the answer is "a long way": waits are
// microseconds, so losses — and map damage — need sustained saturation.
#include <iostream>

#include "bench_util.hpp"
#include "common/flags.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "simnet/traffic.hpp"

int main(int argc, char** argv) {
  using namespace sanmap;
  common::Flags flags;
  flags.define("runs", "5", "seeds per load level");
  flags.define("payload", "4096", "flits per background message");
  if (!flags.parse(argc, argv)) {
    return 0;
  }
  const auto runs = flags.get_int("runs");
  const int payload = static_cast<int>(flags.get_int("payload"));

  const topo::Topology network =
      topo::now_subcluster(topo::Subcluster::kC, "C");
  const topo::NodeId mapper_host = *network.find_host("C.util");
  const topo::Topology expected = topo::core(network);
  const int depth = topo::search_depth(network, mapper_host);

  std::cout << "=== §6 online mapping under scheduled cross-traffic "
               "(subcluster C, " << payload << "-flit messages) ===\n";
  common::Table table({"flows/s", "exact maps", "probes", "time (ms)",
                       "vs quiet"});
  double quiet_ms = 0;
  for (const std::size_t flows_per_second :
       {0u, 10'000u, 50'000u, 100'000u, 250'000u, 500'000u}) {
    int exact = 0;
    common::Summary probes;
    common::Summary time_ms;
    for (std::int64_t run = 0; run < runs; ++run) {
      const auto horizon = common::SimTime::seconds(2);
      common::Rng rng(900 + static_cast<std::uint64_t>(run));
      simnet::TrafficSchedule schedule;
      simnet::add_random_traffic(
          schedule, network,
          flows_per_second * 2 /* horizon seconds */, horizon, rng,
          simnet::CostModel{}, payload);
      schedule.finalize();

      simnet::Network net(network);
      net.attach_traffic(&schedule);
      probe::ProbeEngine engine(net, mapper_host);
      mapper::MapperConfig config;
      config.search_depth = depth;
      const auto result = mapper::BerkeleyMapper(engine, config).run();
      if (topo::isomorphic(result.map, expected)) {
        ++exact;
      }
      probes.add(static_cast<double>(result.probes.total()));
      time_ms.add(result.elapsed.to_ms());
    }
    if (flows_per_second == 0) {
      quiet_ms = time_ms.mean();
    }
    table.add_row({std::to_string(flows_per_second),
                   std::to_string(exact) + "/" + std::to_string(runs),
                   common::fmt(probes.mean(), 0),
                   common::fmt(time_ms.mean(), 0),
                   common::fmt(time_ms.mean() / quiet_ms, 2) + "x"});
  }
  std::cout << table
            << "\nShort background messages delay probes by microseconds "
               "per encounter; the map stays exact far past the loads at "
               "which the Bernoulli model (bench_crosstraffic) predicts "
               "failure — supporting the paper's observation that the "
               "algorithm \"can oftentimes correctly map the network even "
               "in the face of heavy application cross-traffic\".\n";
  return 0;
}
