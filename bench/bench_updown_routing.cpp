// §5.5: deadlock-free route computation — the stage after mapping.
//
// No figure in the paper quantifies this stage, but it is the system's
// deliverable ("the system computes mutually deadlock-free routes and
// distributes them to all network interfaces"), so this bench reports, for
// a range of topologies: route counts, hop statistics, dominant-switch
// relabelings, the channel-dependency acyclicity verdict, UP*/DOWN*
// compliance, and full replay validation through the simulator.
#include <iostream>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "routing/deadlock.hpp"
#include "routing/routes.hpp"

int main() {
  using namespace sanmap;
  std::cout << "=== §5.5: UP*/DOWN* deadlock-free routes (computed on the "
               "mapped graph) ===\n";
  common::Table table({"Topology", "hosts", "switches", "routes",
                       "mean hops", "max", "relabel", "deps", "acyclic",
                       "compliant", "replayed"});

  struct Case {
    std::string name;
    topo::Topology network;
  };
  common::Rng rng(99);
  std::vector<Case> cases;
  cases.push_back({"subcluster C",
                   topo::now_subcluster(topo::Subcluster::kC, "C")});
  cases.push_back({"NOW-100", topo::now_cluster()});
  cases.push_back({"hypercube(4,1)", topo::hypercube(4, 1)});
  cases.push_back({"mesh 4x4", topo::mesh(4, 4, 1)});
  cases.push_back({"torus 4x4", topo::torus(4, 4, 1)});
  cases.push_back({"ring 8", topo::ring(8, 2)});
  cases.push_back({"random 12s/16h", topo::random_irregular(12, 16, 6, rng)});

  bool all_ok = true;
  for (const auto& c : cases) {
    // Route on the MAP the Berkeley algorithm produces, as the system does.
    const auto mapped = bench::run_berkeley(c.network);
    const auto routes = routing::compute_updown_routes(mapped.map);
    const auto analysis = routing::analyze_routes(mapped.map, routes);
    const bool compliant = routing::updown_compliant(routes);

    simnet::Network replay_net(mapped.map);
    std::size_t replayed = 0;
    for (const auto& [key, route] : routes.routes) {
      const auto r = replay_net.send(key.first, route.turns);
      if (r.delivered() && r.destination == key.second) {
        ++replayed;
      }
    }
    const bool ok = analysis.deadlock_free && compliant &&
                    replayed == routes.routes.size();
    all_ok = all_ok && ok;
    table.add_row({c.name, std::to_string(mapped.map.num_hosts()),
                   std::to_string(mapped.map.num_switches()),
                   std::to_string(routes.routes.size()),
                   common::fmt(routes.mean_hops(), 2),
                   std::to_string(routes.max_hops()),
                   std::to_string(routes.orientation.relabeled_switches()),
                   std::to_string(analysis.dependencies),
                   analysis.deadlock_free ? "yes" : "NO",
                   compliant ? "yes" : "NO",
                   std::to_string(replayed) + "/" +
                       std::to_string(routes.routes.size())});
  }
  std::cout << table << "\n"
            << (all_ok ? "RESULT: every route set is deadlock-free, "
                         "compliant, and replays correctly\n"
                       : "RESULT: FAILURE\n");
  return all_ok ? 0 : 1;
}
