// Churn soak: the refresh loop serving through a long-horizon churn
// scenario (the churn-hardened-serving ISSUE's acceptance bench).
//
// One ChurnGenerator scenario — rolling switch maintenance, a correlated
// outage, a flapping burst, host leave/rejoin — is compiled into a fault
// schedule and played against the RefreshLoop twice: once with the
// incremental dirty-region rung enabled (the system under test) and once
// forced to full remaps (the baseline the paper's §5.5 pipeline would do).
// Identical spec + seed give an identical schedule, so the two runs face
// the same fabric history.
//
// Per tick the bench also plays route queries against the catalog the way a
// NIC would, timing each answer, so the soak reports what readers actually
// experienced: p99 query latency, observable stale age, degraded answers
// during quarantine.
//
// Self-gating (exit 1 on failure):
//  * probes per incremental-published epoch < 50% of the full-remap
//    baseline's probes per epoch (the single-region fault epochs are
//    exactly the epochs the incremental rung published);
//  * zero unsafe tables accepted from the loop's own publishes;
//  * at least one incremental publish and one degraded/stale interval, so
//    the scenario demonstrably exercised the escalation ladder.
//
// Results land in BENCH_churn.json. --smoke shrinks the scenario for CI.
#include <algorithm>
#include <chrono>
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "common/flags.hpp"
#include "common/table.hpp"
#include "service/map_catalog.hpp"
#include "service/query_engine.hpp"
#include "service/refresh_loop.hpp"
#include "simnet/churn.hpp"

namespace {

using namespace sanmap;

// Wave spacing must dominate the fabric's remap timescale (a full remap of
// the soak fabric costs over a second of virtual time), or whole down/up
// windows pass unobserved inside one remap session.
constexpr const char* kDefaultSpec =
    "rolling(start=1s,every=5s,down=2s,count=8);"
    "outage(at=22s,switches=2,down=3s);"
    "flapburst(at=30s,span=3s,period=150,duty=0.5,wires=2);"
    "hostchurn(start=3s,every=5s,down=2s,count=6)";

constexpr const char* kSmokeSpec =
    "rolling(start=500,every=4s,down=1500,count=3);"
    "hostchurn(start=2500,every=4s,down=1500,count=3)";

struct SoakResult {
  // Publish accounting (bootstrap excluded).
  int incremental_epochs = 0;
  int full_epochs = 0;
  int escalations = 0;
  std::uint64_t incremental_probes = 0;
  std::uint64_t full_probes = 0;
  // Damper / degraded accounting.
  int backoff_ticks = 0;
  int budget_ticks = 0;
  int degraded_ticks = 0;
  std::uint64_t rejected_unsafe = 0;
  // Stale intervals: virtual time from breakage detection to the publish
  // that restored kFresh.
  std::vector<double> stale_windows_ms;
  // Wall-clock per-query latencies (ns) and reader-visible outcomes.
  std::vector<double> query_ns;
  std::uint64_t answers = 0;
  std::uint64_t degraded_answers = 0;
  double max_stale_age_ms = 0.0;

  [[nodiscard]] double probes_per_incremental_epoch() const {
    return incremental_epochs == 0
               ? 0.0
               : static_cast<double>(incremental_probes) / incremental_epochs;
  }
  [[nodiscard]] double probes_per_full_epoch() const {
    return full_epochs == 0
               ? 0.0
               : static_cast<double>(full_probes) / full_epochs;
  }
};

double percentile(std::vector<double> samples, double p) {
  if (samples.empty()) {
    return 0.0;
  }
  std::sort(samples.begin(), samples.end());
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(samples.size() - 1));
  return samples[idx];
}

double mean(const std::vector<double>& samples) {
  if (samples.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (const double s : samples) {
    sum += s;
  }
  return sum / static_cast<double>(samples.size());
}

SoakResult soak(const topo::Topology& t, const simnet::ChurnSpec& spec,
                std::uint64_t seed, bool incremental, int ticks,
                common::SimTime interval,
                const std::vector<service::RouteQuery>& queries) {
  simnet::Network net(t);
  service::MapCatalog catalog;
  service::RefreshConfig config;
  config.master_name = t.name(bench::mapper_host_of(t));
  config.check_interval = interval;
  config.incremental = incremental;
  service::RefreshLoop loop(net, catalog, config);
  const service::RouteQueryEngine engine(catalog);

  SoakResult result;
  loop.bootstrap();
  // Clause instants are relative to "service up": anchor the scenario after
  // the bootstrap remap, which eats over a second of virtual time. Both
  // runs bootstrap identically, so they compile identical schedules.
  const simnet::FaultSchedule schedule =
      simnet::ChurnGenerator(spec.shifted(loop.now()), seed)
          .compile(t, {bench::mapper_host_of(t)});
  net.attach_faults(&schedule);

  bool in_stale = false;
  common::SimTime stale_start{};
  common::SimTime prev_at = loop.now();
  for (int i = 0; i < ticks; ++i) {
    const auto report = loop.tick();
    if (report.swapped()) {
      if (report.remap == service::RemapKind::kIncremental) {
        ++result.incremental_epochs;
        result.incremental_probes += report.probes_used;
      } else if (report.remap == service::RemapKind::kFull) {
        ++result.full_epochs;
        result.full_probes += report.probes_used;
      }
    }
    result.escalations += report.escalated ? 1 : 0;
    result.backoff_ticks += report.backoff_active ? 1 : 0;
    result.budget_ticks += report.budget_exhausted ? 1 : 0;
    result.degraded_ticks +=
        report.health == service::MapCatalog::HealthState::kDegraded ? 1 : 0;

    // Stale interval bookkeeping: breakage is detected at the tick's check
    // instant (one interval past the previous tick's end) and the interval
    // closes when a publish restores kFresh — usually within the same tick
    // (the remap duration), longer when backoff or degraded serving spans
    // ticks.
    const bool fresh =
        report.health == service::MapCatalog::HealthState::kFresh;
    if (!in_stale && report.broken > 0) {
      in_stale = true;
      stale_start = prev_at + interval;
    }
    if (in_stale && fresh) {
      in_stale = false;
      result.stale_windows_ms.push_back(
          static_cast<double>((report.at - stale_start).to_ns()) / 1e6);
    }
    prev_at = report.at;

    // Reader-side sampling: one timed pass over the query list per tick.
    for (const auto& q : queries) {
      const auto start = std::chrono::steady_clock::now();
      const auto answer = engine.route(q.src, q.dst);
      result.query_ns.push_back(static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - start)
              .count()));
      ++result.answers;
      if (answer.status == service::QueryStatus::kDegraded) {
        ++result.degraded_answers;
      }
      result.max_stale_age_ms =
          std::max(result.max_stale_age_ms,
                   static_cast<double>(answer.stale_age.to_ns()) / 1e6);
    }
  }
  result.rejected_unsafe = catalog.stats().rejected_unsafe;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  common::Flags flags;
  flags.define("spec", "", "churn spec (grammar: see src/simnet/churn.hpp); "
                           "empty picks the built-in soak scenario");
  flags.define("seed", "1", "churn compilation seed");
  flags.define("interval-ms", "50", "virtual time between health checks");
  flags.define("ticks", "0", "soak length in ticks (0: horizon + 10%)");
  flags.define("smoke", "false",
               "CI-sized scenario (small fabric, short horizon)");
  if (!flags.parse(argc, argv)) {
    return 0;
  }
  const bool smoke = flags.get_bool("smoke");

  const topo::Topology t =
      smoke ? topo::torus(3, 3, 1) : topo::torus(4, 4, 2);
  std::string spec_text = flags.get("spec");
  if (spec_text.empty()) {
    spec_text = smoke ? kSmokeSpec : kDefaultSpec;
  }
  const simnet::ChurnSpec spec = simnet::parse_churn_spec(spec_text);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  const topo::NodeId master = bench::mapper_host_of(t);
  // Unshifted compile just for the event count (shifting moves instants,
  // not targets).
  const simnet::FaultSchedule preview =
      simnet::ChurnGenerator(spec, seed).compile(t, {master});

  const auto interval = common::SimTime::ms(flags.get_int("interval-ms"));
  const common::SimTime horizon = spec.horizon(t.num_switches());
  int ticks = static_cast<int>(flags.get_int("ticks"));
  if (ticks == 0) {
    ticks = static_cast<int>(horizon.to_ns() / interval.to_ns()) + 1;
    ticks += ticks / 10 + 5;  // run past the horizon so the fabric settles
  }

  std::vector<service::RouteQuery> queries;
  const auto hosts = t.hosts();
  for (const topo::NodeId a : hosts) {
    for (const topo::NodeId b : hosts) {
      if (a != b && queries.size() < 64) {
        queries.push_back({t.name(a), t.name(b)});
      }
    }
  }

  std::cout << "== churn soak ==\n"
            << "fabric " << t.num_switches() << " switches / " << t.num_hosts()
            << " hosts, spec \"" << to_string(spec) << "\" seed " << seed
            << "\nhorizon " << horizon.str() << " past bootstrap, " << ticks
            << " ticks of " << interval.str() << ", " << preview.events()
            << " compiled fault events\n\n";

  const SoakResult inc = soak(t, spec, seed, true, ticks, interval, queries);
  const SoakResult full =
      soak(t, spec, seed, false, ticks, interval, queries);

  const double inc_cost = inc.probes_per_incremental_epoch();
  const double full_cost = full.probes_per_full_epoch();
  const double ratio = full_cost > 0.0 ? inc_cost / full_cost : 1.0;

  common::Table table({"what", "incremental run", "full-remap run"});
  table.add_row({"epochs published (inc / full rung)",
                 std::to_string(inc.incremental_epochs) + " / " +
                     std::to_string(inc.full_epochs),
                 "0 / " + std::to_string(full.full_epochs)});
  table.add_row({"probes per published epoch",
                 common::fmt(inc_cost, 1) + " (inc rung)",
                 common::fmt(full_cost, 1)});
  table.add_row({"escalations to full remap",
                 std::to_string(inc.escalations),
                 std::to_string(full.escalations)});
  table.add_row({"backoff / budget-damped ticks",
                 std::to_string(inc.backoff_ticks) + " / " +
                     std::to_string(inc.budget_ticks),
                 std::to_string(full.backoff_ticks) + " / " +
                     std::to_string(full.budget_ticks)});
  table.add_row({"degraded ticks", std::to_string(inc.degraded_ticks),
                 std::to_string(full.degraded_ticks)});
  table.add_row({"stale intervals (mean / max ms)",
                 common::fmt(mean(inc.stale_windows_ms), 2) + " / " +
                     common::fmt(percentile(inc.stale_windows_ms, 1.0), 2),
                 common::fmt(mean(full.stale_windows_ms), 2) + " / " +
                     common::fmt(percentile(full.stale_windows_ms, 1.0), 2)});
  table.add_row({"query p50 / p99 (us)",
                 common::fmt(percentile(inc.query_ns, 0.5) / 1e3, 2) + " / " +
                     common::fmt(percentile(inc.query_ns, 0.99) / 1e3, 2),
                 common::fmt(percentile(full.query_ns, 0.5) / 1e3, 2) + " / " +
                     common::fmt(percentile(full.query_ns, 0.99) / 1e3, 2)});
  table.add_row({"degraded answers / total",
                 std::to_string(inc.degraded_answers) + " / " +
                     std::to_string(inc.answers),
                 std::to_string(full.degraded_answers) + " / " +
                     std::to_string(full.answers)});
  table.add_row({"max observed stale age (ms)",
                 common::fmt(inc.max_stale_age_ms, 2),
                 common::fmt(full.max_stale_age_ms, 2)});
  table.add_row({"unsafe tables accepted",
                 std::to_string(inc.rejected_unsafe),
                 std::to_string(full.rejected_unsafe)});
  std::cout << table << "\nincremental / full probe ratio: "
            << common::fmt(ratio, 3) << " (gate: < 0.5)\n";

  bench::JsonReport json("churn");
  json.add("scenario", "horizon_ms",
           static_cast<double>(horizon.to_ns()) / 1e6);
  json.add("scenario", "ticks", ticks);
  json.add("scenario", "fault_events",
           static_cast<double>(preview.events()));
  json.add("incremental", "incremental_epochs", inc.incremental_epochs);
  json.add("incremental", "full_epochs", inc.full_epochs);
  json.add("incremental", "escalations", inc.escalations);
  json.add("incremental", "probes_per_incremental_epoch", inc_cost);
  json.add("incremental", "backoff_ticks", inc.backoff_ticks);
  json.add("incremental", "degraded_ticks", inc.degraded_ticks);
  json.add("incremental", "rejected_unsafe",
           static_cast<double>(inc.rejected_unsafe));
  json.add("incremental", "stale_window_mean_ms",
           mean(inc.stale_windows_ms));
  json.add("incremental", "stale_window_max_ms",
           percentile(inc.stale_windows_ms, 1.0));
  json.add("incremental", "query_p50_us",
           percentile(inc.query_ns, 0.5) / 1e3);
  json.add("incremental", "query_p99_us",
           percentile(inc.query_ns, 0.99) / 1e3);
  json.add("incremental", "degraded_answers",
           static_cast<double>(inc.degraded_answers));
  json.add("incremental", "max_stale_age_ms", inc.max_stale_age_ms);
  json.add("full", "full_epochs", full.full_epochs);
  json.add("full", "probes_per_full_epoch", full_cost);
  json.add("full", "query_p99_us", percentile(full.query_ns, 0.99) / 1e3);
  json.add("gate", "probe_ratio", ratio);
  json.write();

  bool failed = false;
  if (inc.incremental_epochs == 0) {
    std::cerr << "GATE: no epoch was published by the incremental rung\n";
    failed = true;
  }
  if (full.full_epochs == 0) {
    std::cerr << "GATE: baseline run published no full-remap epoch\n";
    failed = true;
  }
  if (ratio >= 0.5) {
    std::cerr << "GATE: incremental epochs cost " << common::fmt(ratio, 3)
              << "x the full-remap baseline (need < 0.5)\n";
    failed = true;
  }
  if (inc.rejected_unsafe != 0 || full.rejected_unsafe != 0) {
    std::cerr << "GATE: the loop offered an unsafe table to the catalog\n";
    failed = true;
  }
  if (inc.stale_windows_ms.empty()) {
    std::cerr << "GATE: soak saw no stale interval — churn never bit\n";
    failed = true;
  }
  return failed ? 1 : 0;
}
