// Figure 6: host and switch probe message hit ratios for the C, C+A and
// C+A+B growth sequence.
//
//   Paper (for reference):
//     System   host  hits  ratio   switch  hits  ratio
//     C         200   107   53%       250   157   62%
//     C+A       412   216   52%       491   295   60%
//     C+A+B     804   324   40%      1207   727   60%
//
// Message counts are algorithmic properties (the paper says so under this
// figure); the exact split between the two categories depends on the probe
// interleaving discipline, which the paper does not fully specify. Ours is
// switch-probe-first (preserving the paper's switch-probes >= host-probes
// relation); EXPERIMENTS.md discusses the residual differences.
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"

int main() {
  using namespace sanmap;
  std::cout << "=== Figure 6: host and switch probe message hit ratios ===\n";
  common::Table table({"System", "host", "hits", "ratio", "switch", "hits",
                       "ratio", "map"});
  for (const auto system :
       {topo::NowSystem::kC, topo::NowSystem::kCA, topo::NowSystem::kCAB}) {
    const topo::Topology network = topo::now_system(system);
    const auto result = bench::run_berkeley(network);
    const auto& p = result.probes;
    table.add_row({topo::to_string(system), std::to_string(p.host_probes),
                   std::to_string(p.host_hits),
                   common::fmt_percent(p.host_ratio()),
                   std::to_string(p.switch_probes),
                   std::to_string(p.switch_hits),
                   common::fmt_percent(p.switch_ratio()),
                   bench::verify(network, result)});
  }
  std::cout << table
            << "\npaper:  C 200/107/53% 250/157/62%   C+A 412/216/52% "
               "491/295/60%   C+A+B 804/324/40% 1207/727/60%\n";
  return 0;
}
