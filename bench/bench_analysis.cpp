// Incremental sanlint under rolling churn: per-epoch analysis cost of the
// dirty-region engine (the publish gate's production path — reanalyze plus
// the independent DeltaChecker) against a from-scratch analyze() of the
// same (map, routes) pair, on megafabric-sized fat trees.
//
// Fabric: mega_fat_tree at several leaf widths (128/256 leaves in --smoke,
// 512/1024/2048 — ~4k switches — in the full run), stripped down to ~48
// hosts spread across the leaves: a service fabric's analysis bill is
// dominated by the fabric sweep (O(m)) and the route table (O(R)), and the
// stripping keeps R fixed while m scales, which is exactly the regime the
// incremental engine's sublinearity claim is about.
//
// Churn: one wire event per epoch — kill a redundant (non-bridge)
// switch-switch wire on even epochs, revive it on odd ones (reconnection
// mints a fresh wire id; candidates are rescanned every epoch because ids
// are append-only). Victims are drawn from wires OFF the current route
// table: that is the fast-path regime the gate is designed for (fabric
// churn around a stable table — on a 4k-switch fabric the vast majority of
// wires carry no route). Killing a route-carrying wire instead reshuffles
// a large fraction of the table through the router's load-balance
// tie-break, which is the remap/escalation regime — the bench injects
// exactly one such reshuffle epoch per size so the engine's exactness is
// exercised on big deltas too, but gates on medians so that epoch reports
// rather than dominates. The root is pinned to epoch 0's natural root so
// root flips never force escalations the scenario didn't ask for.
//
// Per epoch, both pipelines analyze the identical inputs; the bench then
// field-compares the two AnalysisResults (diagnostics, legality entries,
// labels, deadlock verdict — everything but the interchangeable topological
// order) and counts any mismatch as a divergence.
//
// Self-gating (exit 1 on failure):
//  * zero divergences and zero checker rejections across every epoch;
//  * median per-epoch speedup (median full ms / median incremental ms)
//    >= 5x at the largest fabric (>= 2x in --smoke);
//  * sublinear growth: scaling the fabric from the smallest to the largest
//    size grows the median incremental epoch by at most 0.85x the wire
//    growth. (The full analyzer's growth is reported alongside for context,
//    not gated: at small sizes both pipelines share the same route-table-
//    bound floor, so their growth ratios converge regardless of the fabric
//    term this bench isolates.)
//
// Results land in BENCH_analysis.json. --smoke shrinks the sweep for CI.
#include <algorithm>
#include <chrono>
#include <iostream>
#include <set>
#include <string>
#include <vector>

#include "analysis/analyzer.hpp"
#include "analysis/incremental.hpp"
#include "bench_util.hpp"
#include "common/flags.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "routing/routes.hpp"

namespace {

using namespace sanmap;

constexpr std::size_t kHostsKept = 48;

topo::Topology make_fabric(int leaves) {
  topo::MegaFatTreeOptions options;
  options.levels = 4;
  options.leaf_switches = leaves;
  options.taper = 2;
  options.hosts_per_leaf = 1;
  topo::Topology t = topo::mega_fat_tree(options);
  // Strip to kHostsKept hosts, strided across the leaves. No compaction:
  // the churn loop and the incremental engine both key on stable ids.
  const auto hosts = t.hosts();
  const std::size_t stride =
      std::max<std::size_t>(1, hosts.size() / kHostsKept);
  std::size_t kept = 0;
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    if (i % stride == 0 && kept < kHostsKept) {
      ++kept;
      continue;
    }
    t.remove_node(hosts[i]);
  }
  return t;
}

/// Non-bridge switch-to-switch wires: killable without splitting the fabric.
std::vector<topo::WireId> redundant_wires(const topo::Topology& t) {
  const auto bridge_list = topo::bridges(t);
  const std::set<topo::WireId> bridge_set(bridge_list.begin(),
                                          bridge_list.end());
  std::vector<topo::WireId> out;
  for (const topo::WireId w : t.wires()) {
    const topo::Wire& wire = t.wire(w);
    if (!bridge_set.contains(w) && t.is_switch(wire.a.node) &&
        t.is_switch(wire.b.node)) {
      out.push_back(w);
    }
  }
  return out;
}

/// Wires carried by at least one route in the current table.
std::set<topo::WireId> routed_wires(const routing::RoutingResult& routes) {
  std::set<topo::WireId> used;
  for (const auto& [key, route] : routes.routes) {
    used.insert(route.wires.begin(), route.wires.end());
  }
  return used;
}

/// True when the two results agree on everything but the interchangeable
/// deadlock topological order.
bool equivalent(const analysis::AnalysisResult& full,
                const analysis::AnalysisResult& inc) {
  const auto& a = full.report.diagnostics();
  const auto& b = inc.report.diagnostics();
  if (a.size() != b.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].code != b[i].code || a[i].severity != b[i].severity ||
        a[i].location != b[i].location || a[i].message != b[i].message ||
        a[i].hint != b[i].hint) {
      return false;
    }
  }
  if (full.analyzed_routes != inc.analyzed_routes) {
    return false;
  }
  if (!full.analyzed_routes) {
    return true;
  }
  if (full.legality.root != inc.legality.root ||
      full.legality.labels != inc.legality.labels ||
      full.legality.all_legal != inc.legality.all_legal ||
      full.legality.routes.size() != inc.legality.routes.size()) {
    return false;
  }
  for (std::size_t i = 0; i < full.legality.routes.size(); ++i) {
    const analysis::RouteLegality& x = full.legality.routes[i];
    const analysis::RouteLegality& y = inc.legality.routes[i];
    if (x.src != y.src || x.dst != y.dst || x.legal != y.legal ||
        x.apex_hop != y.apex_hop || x.offending_hop != y.offending_hop) {
      return false;
    }
  }
  return full.deadlock.deadlock_free == inc.deadlock.deadlock_free &&
         full.deadlock.channels == inc.deadlock.channels &&
         full.deadlock.dependencies == inc.deadlock.dependencies;
}

struct SizeResult {
  int leaves = 0;
  std::size_t switches = 0;
  std::size_t wires = 0;
  std::size_t routes = 0;
  int epochs = 0;
  int fast_path = 0;
  int escalated = 0;
  int divergences = 0;
  int checker_rejections = 0;
  double full_total_ms = 0.0;
  double inc_total_ms = 0.0;
  std::vector<double> full_epoch_ms;
  std::vector<double> inc_epoch_ms;

  [[nodiscard]] double total_speedup() const {
    return inc_total_ms > 0.0 ? full_total_ms / inc_total_ms : 0.0;
  }
};

double median(std::vector<double> samples) {
  if (samples.empty()) {
    return 0.0;
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

/// The gated figure: typical-epoch speedup, robust to the one deliberate
/// reshuffle epoch per size.
double median_speedup(const SizeResult& r) {
  const double inc = median(r.inc_epoch_ms);
  return inc > 0.0 ? median(r.full_epoch_ms) / inc : 0.0;
}

double ms_since(const std::chrono::steady_clock::time_point& start) {
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(
                 std::chrono::steady_clock::now() - start)
                 .count()) /
         1e6;
}

SizeResult run_size(int leaves, int epochs, std::uint64_t seed) {
  topo::Topology t = make_fabric(leaves);
  SizeResult result;
  result.leaves = leaves;
  result.switches = t.num_switches();
  result.wires = t.num_wires();
  result.epochs = epochs;

  // Pin the root across the whole soak: epoch 0's natural root.
  const routing::RoutingResult seed_routes =
      routing::compute_updown_routes(t, {}, seed);
  routing::UpDownOptions route_options;
  route_options.root = seed_routes.orientation.root();
  result.routes = seed_routes.routes.size();

  analysis::AnalysisState state;
  analysis::DeltaChecker checker;
  const analysis::AnalysisState::Result base = state.reset(t, seed_routes);
  if (!checker.check(t, seed_routes, base.analysis, base.delta)) {
    ++result.checker_rejections;
    return result;
  }

  common::Rng rng(seed);
  struct Killed {
    topo::NodeId a;
    topo::Port pa;
    topo::NodeId b;
    topo::Port pb;
  };
  std::vector<Killed> downed;
  std::set<topo::WireId> used = routed_wires(seed_routes);
  // One kill epoch per size deliberately targets a route-carrying wire: the
  // router's load-balance tie-break then reshuffles a chunk of the table and
  // the engine has to prove a large delta exactly.
  const int reshuffle_epoch = (epochs / 2) & ~1;

  for (int epoch = 0; epoch < epochs; ++epoch) {
    // Rolling churn, one wire event per epoch. Candidates are rescanned
    // every time: reviving mints a fresh id, so a stale list would point at
    // tombstones.
    if (!downed.empty() && epoch % 2 == 1) {
      const Killed k = downed.back();
      downed.pop_back();
      t.connect(k.a, k.pa, k.b, k.pb);
    } else {
      const bool want_routed = epoch == reshuffle_epoch;
      std::vector<topo::WireId> candidates;
      for (const topo::WireId w : redundant_wires(t)) {
        if (used.contains(w) == want_routed) {
          candidates.push_back(w);
        }
      }
      if (candidates.empty()) {
        // Degenerate fabric (every redundant wire on one side of the route
        // table) — fall back to any redundant wire.
        candidates = redundant_wires(t);
      }
      if (candidates.empty()) {
        break;
      }
      const topo::WireId victim =
          candidates[rng.below(candidates.size())];
      const topo::Wire& wire = t.wire(victim);
      downed.push_back({wire.a.node, wire.a.port, wire.b.node, wire.b.port});
      t.disconnect(victim);
    }
    const routing::RoutingResult routes =
        routing::compute_updown_routes(t, route_options, seed);
    used = routed_wires(routes);

    const auto full_start = std::chrono::steady_clock::now();
    const analysis::AnalysisResult full = analysis::analyze(t, routes);
    const double full_ms = ms_since(full_start);

    // The production gate path: reanalyze + the independent checker.
    const auto inc_start = std::chrono::steady_clock::now();
    const analysis::AnalysisState::Result step = state.reanalyze(t, routes);
    const bool proved =
        checker.check(t, routes, step.analysis, step.delta);
    const double inc_ms = ms_since(inc_start);

    result.full_total_ms += full_ms;
    result.inc_total_ms += inc_ms;
    result.full_epoch_ms.push_back(full_ms);
    result.inc_epoch_ms.push_back(inc_ms);
    if (step.delta.escalated_full) {
      ++result.escalated;
    } else {
      ++result.fast_path;
    }
    if (!proved) {
      ++result.checker_rejections;
      state.reset(t, routes, analysis::EscalationReason::kCheckerRejected);
    }
    if (!equivalent(full, step.analysis)) {
      ++result.divergences;
    }
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  common::Flags flags;
  flags.define("seed", "1", "churn victim-selection seed");
  flags.define("epochs", "0", "churn epochs per fabric size (0 = default)");
  flags.define("smoke", "false", "CI-sized sweep (small fabrics, few epochs)");
  if (!flags.parse(argc, argv)) {
    return 0;
  }
  const bool smoke = flags.get_bool("smoke");
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  int epochs = static_cast<int>(flags.get_int("epochs"));
  if (epochs == 0) {
    epochs = smoke ? 8 : 16;
  }
  const std::vector<int> sizes =
      smoke ? std::vector<int>{128, 256} : std::vector<int>{512, 1024, 2048};
  const double min_speedup = smoke ? 2.0 : 5.0;

  std::cout << "== incremental analysis under churn ==\n"
            << "mega_fat_tree sweep, " << kHostsKept << " hosts kept, "
            << epochs << " epochs per size, seed " << seed << "\n\n";

  std::vector<SizeResult> results;
  for (const int leaves : sizes) {
    results.push_back(run_size(leaves, epochs, seed));
  }

  common::Table table({"leaves", "switches", "wires", "routes", "fast/esc",
                       "full ms/epoch", "inc ms/epoch", "speedup"});
  for (const SizeResult& r : results) {
    table.add_row({std::to_string(r.leaves), std::to_string(r.switches),
                   std::to_string(r.wires), std::to_string(r.routes),
                   std::to_string(r.fast_path) + "/" +
                       std::to_string(r.escalated),
                   common::fmt(median(r.full_epoch_ms), 3),
                   common::fmt(median(r.inc_epoch_ms), 3),
                   common::fmt(median_speedup(r), 1) + "x"});
  }
  std::cout << table;

  const SizeResult& small = results.front();
  const SizeResult& large = results.back();
  const double wire_growth =
      static_cast<double>(large.wires) / static_cast<double>(small.wires);
  const double inc_growth =
      median(small.inc_epoch_ms) > 0.0
          ? median(large.inc_epoch_ms) / median(small.inc_epoch_ms)
          : 0.0;
  const double full_growth =
      median(small.full_epoch_ms) > 0.0
          ? median(large.full_epoch_ms) / median(small.full_epoch_ms)
          : 0.0;
  int divergences = 0;
  int rejections = 0;
  for (const SizeResult& r : results) {
    divergences += r.divergences;
    rejections += r.checker_rejections;
  }
  std::cout << "\nwire growth " << common::fmt(wire_growth, 2)
            << "x, inc epoch growth " << common::fmt(inc_growth, 2)
            << "x, full epoch growth " << common::fmt(full_growth, 2)
            << "x\nlargest-fabric median speedup "
            << common::fmt(median_speedup(large), 1) << "x (gate: >= "
            << common::fmt(min_speedup, 0) << "x), total-time ratio "
            << common::fmt(large.total_speedup(), 1) << "x, divergences "
            << divergences << ", checker rejections " << rejections << "\n";

  bench::JsonReport json("analysis");
  for (const SizeResult& r : results) {
    const std::string name = std::to_string(r.leaves) + "-leaves";
    json.add(name, "switches", static_cast<double>(r.switches));
    json.add(name, "wires", static_cast<double>(r.wires));
    json.add(name, "routes", static_cast<double>(r.routes));
    json.add(name, "fast_path", r.fast_path);
    json.add(name, "escalated", r.escalated);
    json.add(name, "full_epoch_median_ms", median(r.full_epoch_ms));
    json.add(name, "inc_epoch_median_ms", median(r.inc_epoch_ms));
    json.add(name, "median_speedup", median_speedup(r));
    json.add(name, "total_speedup", r.total_speedup());
  }
  json.add("gate", "wire_growth", wire_growth);
  json.add("gate", "inc_epoch_growth", inc_growth);
  json.add("gate", "full_epoch_growth", full_growth);
  json.add("gate", "largest_median_speedup", median_speedup(large));
  json.add("gate", "divergences", divergences);
  json.add("gate", "checker_rejections", rejections);
  json.write();

  bool failed = false;
  if (divergences != 0) {
    std::cerr << "GATE: incremental and from-scratch verdicts diverged "
              << divergences << " time(s)\n";
    failed = true;
  }
  if (rejections != 0) {
    std::cerr << "GATE: the independent checker rejected " << rejections
              << " delta(s)\n";
    failed = true;
  }
  if (median_speedup(large) < min_speedup) {
    std::cerr << "GATE: largest-fabric median speedup "
              << common::fmt(median_speedup(large), 2) << "x below "
              << common::fmt(min_speedup, 0) << "x\n";
    failed = true;
  }
  if (large.fast_path == 0) {
    std::cerr << "GATE: no epoch was served from the fast path\n";
    failed = true;
  }
  if (inc_growth > 0.85 * wire_growth) {
    std::cerr << "GATE: incremental epoch grew " << common::fmt(inc_growth, 2)
              << "x against " << common::fmt(wire_growth, 2)
              << "x wire growth (need <= 0.85x of it)\n";
    failed = true;
  }
  return failed ? 1 : 0;
}
