// Figure 8: number of nodes in the model graph, edges in the model graph,
// and items on the frontier list, sampled after each switch exploration of
// one C+A+B mapping run.
//
// The paper's curves grow to a peak of ~750 model nodes which merging and
// the final prune collapse to the 140 actual nodes; the frontier decays to
// zero; the last sample is the post-prune plummet.
#include <iostream>

#include "bench_util.hpp"
#include "common/flags.hpp"
#include "common/table.hpp"

int main(int argc, char** argv) {
  using namespace sanmap;
  common::Flags flags;
  flags.define("every", "10", "print every Nth exploration sample");
  if (!flags.parse(argc, argv)) {
    return 0;
  }
  const auto every = static_cast<std::size_t>(flags.get_int("every"));

  std::cout << "=== Figure 8: model graph growth during one C+A+B run ===\n";
  const topo::Topology network = topo::now_system(topo::NowSystem::kCAB);
  mapper::MapperConfig config;
  config.record_trace = true;
  const auto result = bench::run_berkeley(
      network, simnet::CollisionModel::kCutThrough, config);

  common::Table table({"exploration", "#nodes", "#edges", "#frontier"});
  for (std::size_t i = 0; i < result.trace.size(); ++i) {
    const auto& p = result.trace[i];
    const bool is_last = i + 1 == result.trace.size();
    if (!is_last && p.exploration % every != 0) {
      continue;
    }
    table.add_row({std::to_string(p.exploration) + (is_last ? " (pruned)" : ""),
                   std::to_string(p.model_vertices),
                   std::to_string(p.model_edges),
                   std::to_string(p.frontier)});
  }
  std::cout << table << "\n";
  std::cout << "explorations      : " << result.explorations
            << " (paper: ~250)\n";
  std::cout << "peak model nodes  : " << result.peak_model_vertices
            << " (paper: ~750)\n";
  std::cout << "final model nodes : " << result.map.num_nodes()
            << " = actual nodes " << network.num_nodes()
            << " (paper: 140)\n";
  std::cout << "map               : " << bench::verify(network, result)
            << "\n";
  return 0;
}
