// Ablation of the exploration depth bound (§3.1.4, §3.2.7).
//
// The proof needs SearchDepth >= Q + D + 1 (the paper notes Q + D also
// suffices and leaves tighter bounds open; for packet routing 2D + 1 is
// enough). This bench sweeps the depth on the NOW systems and on a ring
// (whose replicates make depth matter most), reporting probe cost and
// whether the map is still exact — i.e. how conservative the bound is in
// practice.
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"

int main() {
  using namespace sanmap;
  std::cout << "=== Ablation: exploration depth (Q + D + 1 bound) ===\n";

  struct Case {
    std::string name;
    topo::Topology network;
  };
  std::vector<Case> cases;
  cases.push_back({"subcluster C",
                   topo::now_subcluster(topo::Subcluster::kC, "C")});
  cases.push_back({"ring 8x1", topo::ring(8, 1)});
  cases.push_back({"C+A+B", topo::now_system(topo::NowSystem::kCAB)});

  common::Table table({"Topology", "depth", "bound", "probes", "time (ms)",
                       "mapped nodes", "exact"});
  for (const auto& c : cases) {
    const topo::NodeId mapper_host = bench::mapper_host_of(c.network);
    const int q = topo::q_value(c.network, mapper_host);
    const int d = topo::diameter(c.network);
    const int bound = q + d + 1;
    int first_exact_depth = -1;
    for (int depth = 1; depth <= bound + 2; ++depth) {
      simnet::Network net(c.network);
      probe::ProbeEngine engine(net, mapper_host);
      mapper::MapperConfig config;
      config.search_depth = depth;
      const auto result = mapper::BerkeleyMapper(engine, config).run();
      const bool exact =
          topo::isomorphic(result.map, topo::core(c.network));
      if (exact && first_exact_depth < 0) {
        first_exact_depth = depth;
      }
      std::string label = std::to_string(depth);
      if (depth == bound) {
        label += " (=Q+D+1)";
      } else if (depth == 2 * d + 1) {
        label += " (=2D+1)";
      }
      table.add_row({c.name, label,
                     "Q=" + std::to_string(q) + " D=" + std::to_string(d),
                     std::to_string(result.probes.total()),
                     common::fmt(result.elapsed.to_ms(), 0),
                     std::to_string(result.map.num_nodes()) + "/" +
                         std::to_string(topo::core(c.network).num_nodes()),
                     exact ? "yes" : "no"});
      // Past the bound nothing changes; stop shortly after for brevity.
    }
    table.add_rule();
    std::cout << "first exact depth for " << c.name << ": "
              << first_exact_depth << " (bound " << bound << ")\n";
  }
  std::cout << "\n" << table
            << "\nThe Q+D+1 bound is safe (exact at and beyond it) but "
               "conservative: in these networks the map is already exact at "
               "a smaller depth, at lower probe cost.\n";
  return 0;
}
